// Seeded, deterministic fault planning for the measurement path.
//
// A FaultPlan decides, for every (cell key, attempt) pair, whether a fault
// fires and which kind. Decisions are pure functions of the plan seed and
// the pair, so a campaign replays identically across processes — the
// property the checkpoint/resume tests rely on — and a retry of the same
// cell (attempt + 1) draws an independent decision, so transient faults
// clear at the configured rate.
//
// Configuration comes from the environment (chaos jobs set these):
//   COLOC_FAULT_RATE    probability a measurement faults      (default 0)
//   COLOC_FAULT_SEED    plan seed                             (default 1234)
//   COLOC_FAULT_KINDS   comma list of transient,corrupt,outlier,hang
//                       (default transient,corrupt,outlier — hangs are
//                       opt-in because each one costs a cell deadline)
//   COLOC_FAULT_PHASES  comma list of baseline,campaign       (default both)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace coloc::fault {

/// What an injected fault does to the measurement it targets.
enum class FaultKind : std::uint32_t {
  kNone = 0,
  /// Throws MeasurementError(kTransient): the run died and said so.
  kTransient,
  /// Returns a reading with NaN / negative / zeroed fields: the run
  /// "succeeded" but the counters are garbage (perf multiplexing, SMIs).
  kCorruptedReading,
  /// Multiplies the wall time by a large factor: a plausible-looking but
  /// wildly wrong reading only plausibility bounds can catch.
  kOutlierNoise,
  /// Stalls the measurement until its cancellation token fires (or a cap
  /// expires): exercises the deadline machinery end to end.
  kHang,
};

const char* to_string(FaultKind kind);

/// Which measurement pass a fault may target.
enum class MeasurePhase { kBaseline, kCampaign };

struct FaultPlanConfig {
  double rate = 0.0;          // probability per (cell, attempt)
  std::uint64_t seed = 1234;  // plan seed; independent of testbed noise
  /// Enabled kinds; empty means the default set (everything but kHang).
  std::vector<FaultKind> kinds;
  bool inject_baseline = true;
  bool inject_campaign = true;
  /// Injected hangs stall at most this long even with no token to cancel
  /// them, so an un-deadlined call site still terminates.
  double hang_cap_ms = 250.0;
  /// Outlier faults scale wall time by a factor uniform in this range;
  /// the default sits far above any real co-location slowdown so the
  /// plausibility validator can separate signal from injection.
  double outlier_min_factor = 25.0;
  double outlier_max_factor = 60.0;

  /// Reads the COLOC_FAULT_* variables; unset variables keep defaults.
  /// Throws coloc::invalid_argument_error on unparseable values.
  static FaultPlanConfig from_env();
};

/// Parses a COLOC_FAULT_KINDS-style list ("transient,corrupt,outlier,hang").
std::vector<FaultKind> parse_fault_kinds(std::string_view spec);

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  const FaultPlanConfig& config() const { return config_; }
  bool enabled() const { return config_.rate > 0.0; }

  /// The fault (or kNone) for one measurement attempt of one cell.
  /// Deterministic in (seed, cell_key, attempt, phase).
  FaultKind decide(std::string_view cell_key, std::uint64_t attempt,
                   MeasurePhase phase) const;

  /// Deterministic outlier multiplier for the same coordinates.
  double outlier_factor(std::string_view cell_key,
                        std::uint64_t attempt) const;

  /// Deterministic pick in [0, n) used to vary corruption flavors.
  std::uint64_t corruption_variant(std::string_view cell_key,
                                   std::uint64_t attempt,
                                   std::uint64_t n) const;

 private:
  std::uint64_t mix(std::string_view cell_key, std::uint64_t attempt,
                    std::uint64_t salt) const;

  FaultPlanConfig config_;
  std::vector<FaultKind> enabled_kinds_;
};

}  // namespace coloc::fault
