#include "fault/resilient_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace coloc::fault {

namespace {
struct RunnerMetrics {
  obs::Counter& cells_ok;
  obs::Counter& cells_quarantined;
  obs::Counter& cells_resumed;
  obs::Counter& retries;
  obs::Counter& deadline_overruns;
  obs::Histogram& attempts_per_cell;
  obs::Histogram& backoff_seconds;
  obs::Histogram& commit_hold_seconds;

  static RunnerMetrics& get() {
    auto& registry = obs::Registry::global();
    static RunnerMetrics metrics{
        registry.counter("resilient_cells_total", {{"result", "ok"}}),
        registry.counter("resilient_cells_total", {{"result", "quarantined"}}),
        registry.counter("resilient_cells_total", {{"result", "resumed"}}),
        registry.counter("resilient_retries_total"),
        registry.counter("resilient_deadline_overruns_total"),
        registry.histogram("resilient_attempts_per_cell"),
        registry.histogram("resilient_backoff_seconds"),
        registry.histogram("pool_commit_hold_seconds"),
    };
    return metrics;
  }
};

double env_double_or(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return (end == raw || *end != '\0') ? fallback : value;
}
}  // namespace

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy policy;
  policy.deadline_ms =
      env_double_or("COLOC_CELL_DEADLINE_MS", policy.deadline_ms);
  policy.max_attempts = static_cast<std::size_t>(env_double_or(
      "COLOC_MAX_ATTEMPTS", static_cast<double>(policy.max_attempts)));
  return policy;
}

void validate_measurement(const sim::RunMeasurement& m,
                          double reference_time_s,
                          const PlausibilityBounds& bounds) {
  if (!std::isfinite(m.execution_time_s) || m.execution_time_s <= 0.0) {
    throw MeasurementError(ErrorClass::kCorruptedData,
                           "non-finite or non-positive wall time");
  }
  for (std::size_t e = 0; e < sim::kNumPresetEvents; ++e) {
    const double v = m.counters.get(static_cast<sim::PresetEvent>(e));
    if (!std::isfinite(v) || v < 0.0) {
      throw MeasurementError(
          ErrorClass::kCorruptedData,
          "counter " + to_string(static_cast<sim::PresetEvent>(e)) +
              " reads non-finite or negative");
    }
  }
  if (m.counters.get(sim::PresetEvent::kTotalInstructions) <= 0.0) {
    throw MeasurementError(ErrorClass::kCorruptedData,
                           "zero instruction count (starved event group)");
  }
  if (reference_time_s > 0.0) {
    const double slowdown = m.execution_time_s / reference_time_s;
    if (slowdown < bounds.min_slowdown || slowdown > bounds.max_slowdown) {
      std::ostringstream os;
      os << "implausible slowdown " << slowdown << " vs reference (bounds "
         << bounds.min_slowdown << ".." << bounds.max_slowdown << ")";
      throw MeasurementError(ErrorClass::kCorruptedData, os.str());
    }
  }
}

double CompletenessReport::completeness() const {
  return cells_attempted == 0
             ? 1.0
             : static_cast<double>(cells_ok + cells_resumed) /
                   static_cast<double>(cells_attempted);
}

std::string CompletenessReport::summary() const {
  std::ostringstream os;
  os << "completeness " << 100.0 * completeness() << "% (" << cells_ok
     << " measured, " << cells_resumed << " resumed, " << cells_quarantined
     << " quarantined of " << cells_attempted << " cells); " << retries
     << " retries, " << transient_faults << " transient faults, "
     << corrupted_readings << " corrupted readings, " << deadline_overruns
     << " deadline overruns";
  return os.str();
}

ResilientRunner::ResilientRunner(RetryPolicy policy, PlausibilityBounds bounds,
                                 std::size_t deadline_workers)
    : policy_(policy), bounds_(bounds),
      pool_(deadline_workers != 0
                ? deadline_workers
                : std::max<std::size_t>(2, configured_jobs())) {
  COLOC_CHECK_MSG(policy_.max_attempts > 0, "need at least one attempt");
  COLOC_CHECK_MSG(policy_.deadline_ms > 0.0, "deadline must be positive");
}

double ResilientRunner::backoff_ms(const std::string& tag,
                                   std::size_t attempt) const {
  double delay = policy_.base_backoff_ms;
  for (std::size_t i = 0; i < attempt; ++i) {
    delay = std::min(delay * policy_.backoff_multiplier,
                     policy_.max_backoff_ms);
  }
  std::uint64_t h = policy_.jitter_seed;
  for (char c : tag) h = h * 0x100000001b3ULL + static_cast<unsigned char>(c);
  h ^= attempt * 0x9e3779b97f4a7c15ULL;
  Rng rng(splitmix64(h));
  return delay * rng.uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
}

void ResilientRunner::note_resumed_cell() {
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    ++report_.cells_attempted;
    ++report_.cells_resumed;
  }
  RunnerMetrics::get().cells_resumed.inc();
}

void ResilientRunner::note_skipped_cell(const std::string& tag,
                                        const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    ++report_.cells_attempted;
    ++report_.cells_quarantined;
    report_.quarantined.push_back(QuarantinedCell{tag, reason, 0});
  }
  RunnerMetrics::get().cells_quarantined.inc();
}

std::optional<sim::RunMeasurement> ResilientRunner::measure_cell(
    const std::string& tag, double reference_time_s,
    const MeasureFn& measure) {
  return commit_outcome(tag, measure_outcome(tag, reference_time_s, measure));
}

CellOutcome ResilientRunner::measure_outcome(const std::string& tag,
                                             double reference_time_s,
                                             const MeasureFn& measure) {
  obs::ScopedSpan cell_span("resilient/cell", "fault");
  RunnerMetrics& metrics = RunnerMetrics::get();
  CellOutcome outcome;
  outcome.failure_reason = "unknown";

  std::size_t attempt = 0;
  for (; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++outcome.retries;
      metrics.retries.inc();
      // Jitter comes from an RNG constructed locally from
      // (jitter_seed, tag, attempt): concurrent cells never share
      // generator state, and the delay is a pure function of the cell.
      const double delay_ms = backoff_ms(tag, attempt - 1);
      metrics.backoff_seconds.observe(delay_ms / 1e3);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }

    obs::ScopedSpan attempt_span("resilient/attempt", "fault");
    // Per-attempt result storage shared with the task: an abandoned
    // (overrun) attempt may still be writing while we move on, so it must
    // never share storage with a later attempt.
    auto result = std::make_shared<sim::RunMeasurement>();
    DeadlineTask task = pool_.submit_with_deadline(
        [result, &measure, attempt](const CancellationToken&) {
          *result = measure(attempt);
        },
        std::chrono::milliseconds(
            static_cast<std::int64_t>(policy_.deadline_ms)));

    if (!task.wait_until_deadline()) {
      ++outcome.deadline_overruns;
      metrics.deadline_overruns.inc();
      outcome.failure_reason = "deadline overrun (" +
                               std::to_string(policy_.deadline_ms) + " ms)";
      continue;
    }

    try {
      task.future.get();
      validate_measurement(*result, reference_time_s, bounds_);
    } catch (const classified_error& e) {
      outcome.failure_reason = e.what();
      if (e.error_class() == ErrorClass::kPermanent) break;
      if (e.error_class() == ErrorClass::kCorruptedData) {
        ++outcome.corrupted_readings;
      } else {
        ++outcome.transient_faults;
      }
      continue;
    } catch (const std::exception& e) {
      // Unknown exceptions carry no retry semantics: fail the cell now.
      outcome.failure_reason = e.what();
      break;
    }

    outcome.attempts = attempt + 1;
    outcome.measurement = std::move(*result);
    metrics.cells_ok.inc();
    metrics.attempts_per_cell.observe(static_cast<double>(outcome.attempts));
    outcome.completed_ns = obs::trace_now_ns();
    return outcome;
  }

  outcome.attempts = std::min(attempt + 1, policy_.max_attempts);
  metrics.cells_quarantined.inc();
  metrics.attempts_per_cell.observe(static_cast<double>(outcome.attempts));
  outcome.completed_ns = obs::trace_now_ns();
  return outcome;
}

std::optional<sim::RunMeasurement> ResilientRunner::commit_outcome(
    const std::string& tag, CellOutcome outcome) {
  if (outcome.completed_ns != 0) {
    // Time a finished outcome spent parked before the orchestrator's
    // ordered-commit window reached it (~0 on the serial path, where
    // commit follows measurement immediately).
    const std::uint64_t now_ns = obs::trace_now_ns();
    const std::uint64_t held_ns =
        now_ns > outcome.completed_ns ? now_ns - outcome.completed_ns : 0;
    RunnerMetrics::get().commit_hold_seconds.observe(
        static_cast<double>(held_ns) * 1e-9);
  }
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    ++report_.cells_attempted;
    report_.retries += outcome.retries;
    report_.transient_faults += outcome.transient_faults;
    report_.corrupted_readings += outcome.corrupted_readings;
    report_.deadline_overruns += outcome.deadline_overruns;
    if (outcome.ok()) {
      ++report_.cells_ok;
    } else {
      ++report_.cells_quarantined;
      report_.quarantined.push_back(
          QuarantinedCell{tag, outcome.failure_reason, outcome.attempts});
    }
  }
  if (!outcome.ok()) {
    COLOC_LOG_WARN << "quarantined cell " << tag << " after "
                   << outcome.attempts
                   << " attempts: " << outcome.failure_reason;
    return std::nullopt;
  }
  return std::move(outcome.measurement);
}

}  // namespace coloc::fault
