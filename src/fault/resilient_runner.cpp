#include "fault/resilient_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace coloc::fault {

namespace {
struct RunnerMetrics {
  obs::Counter& cells_ok;
  obs::Counter& cells_quarantined;
  obs::Counter& cells_resumed;
  obs::Counter& retries;
  obs::Counter& deadline_overruns;
  obs::Histogram& attempts_per_cell;
  obs::Histogram& backoff_seconds;

  static RunnerMetrics& get() {
    auto& registry = obs::Registry::global();
    static RunnerMetrics metrics{
        registry.counter("resilient_cells_total", {{"result", "ok"}}),
        registry.counter("resilient_cells_total", {{"result", "quarantined"}}),
        registry.counter("resilient_cells_total", {{"result", "resumed"}}),
        registry.counter("resilient_retries_total"),
        registry.counter("resilient_deadline_overruns_total"),
        registry.histogram("resilient_attempts_per_cell"),
        registry.histogram("resilient_backoff_seconds"),
    };
    return metrics;
  }
};

double env_double_or(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return (end == raw || *end != '\0') ? fallback : value;
}
}  // namespace

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy policy;
  policy.deadline_ms =
      env_double_or("COLOC_CELL_DEADLINE_MS", policy.deadline_ms);
  policy.max_attempts = static_cast<std::size_t>(env_double_or(
      "COLOC_MAX_ATTEMPTS", static_cast<double>(policy.max_attempts)));
  return policy;
}

void validate_measurement(const sim::RunMeasurement& m,
                          double reference_time_s,
                          const PlausibilityBounds& bounds) {
  if (!std::isfinite(m.execution_time_s) || m.execution_time_s <= 0.0) {
    throw MeasurementError(ErrorClass::kCorruptedData,
                           "non-finite or non-positive wall time");
  }
  for (std::size_t e = 0; e < sim::kNumPresetEvents; ++e) {
    const double v = m.counters.get(static_cast<sim::PresetEvent>(e));
    if (!std::isfinite(v) || v < 0.0) {
      throw MeasurementError(
          ErrorClass::kCorruptedData,
          "counter " + to_string(static_cast<sim::PresetEvent>(e)) +
              " reads non-finite or negative");
    }
  }
  if (m.counters.get(sim::PresetEvent::kTotalInstructions) <= 0.0) {
    throw MeasurementError(ErrorClass::kCorruptedData,
                           "zero instruction count (starved event group)");
  }
  if (reference_time_s > 0.0) {
    const double slowdown = m.execution_time_s / reference_time_s;
    if (slowdown < bounds.min_slowdown || slowdown > bounds.max_slowdown) {
      std::ostringstream os;
      os << "implausible slowdown " << slowdown << " vs reference (bounds "
         << bounds.min_slowdown << ".." << bounds.max_slowdown << ")";
      throw MeasurementError(ErrorClass::kCorruptedData, os.str());
    }
  }
}

double CompletenessReport::completeness() const {
  return cells_attempted == 0
             ? 1.0
             : static_cast<double>(cells_ok + cells_resumed) /
                   static_cast<double>(cells_attempted);
}

std::string CompletenessReport::summary() const {
  std::ostringstream os;
  os << "completeness " << 100.0 * completeness() << "% (" << cells_ok
     << " measured, " << cells_resumed << " resumed, " << cells_quarantined
     << " quarantined of " << cells_attempted << " cells); " << retries
     << " retries, " << transient_faults << " transient faults, "
     << corrupted_readings << " corrupted readings, " << deadline_overruns
     << " deadline overruns";
  return os.str();
}

ResilientRunner::ResilientRunner(RetryPolicy policy, PlausibilityBounds bounds)
    : policy_(policy), bounds_(bounds), pool_(2) {
  COLOC_CHECK_MSG(policy_.max_attempts > 0, "need at least one attempt");
  COLOC_CHECK_MSG(policy_.deadline_ms > 0.0, "deadline must be positive");
}

double ResilientRunner::backoff_ms(const std::string& tag,
                                   std::size_t attempt) const {
  double delay = policy_.base_backoff_ms;
  for (std::size_t i = 0; i < attempt; ++i) {
    delay = std::min(delay * policy_.backoff_multiplier,
                     policy_.max_backoff_ms);
  }
  std::uint64_t h = policy_.jitter_seed;
  for (char c : tag) h = h * 0x100000001b3ULL + static_cast<unsigned char>(c);
  h ^= attempt * 0x9e3779b97f4a7c15ULL;
  Rng rng(splitmix64(h));
  return delay * rng.uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
}

void ResilientRunner::note_resumed_cell() {
  ++report_.cells_attempted;
  ++report_.cells_resumed;
  RunnerMetrics::get().cells_resumed.inc();
}

void ResilientRunner::note_skipped_cell(const std::string& tag,
                                        const std::string& reason) {
  ++report_.cells_attempted;
  ++report_.cells_quarantined;
  RunnerMetrics::get().cells_quarantined.inc();
  report_.quarantined.push_back(QuarantinedCell{tag, reason, 0});
}

std::optional<sim::RunMeasurement> ResilientRunner::measure_cell(
    const std::string& tag, double reference_time_s,
    const MeasureFn& measure) {
  obs::ScopedSpan cell_span("resilient/cell", "fault");
  RunnerMetrics& metrics = RunnerMetrics::get();
  ++report_.cells_attempted;

  std::string last_reason = "unknown";
  std::size_t attempt = 0;
  for (; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++report_.retries;
      metrics.retries.inc();
      const double delay_ms = backoff_ms(tag, attempt - 1);
      metrics.backoff_seconds.observe(delay_ms / 1e3);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }

    obs::ScopedSpan attempt_span("resilient/attempt", "fault");
    // Per-attempt result storage shared with the task: an abandoned
    // (overrun) attempt may still be writing while we move on, so it must
    // never share storage with a later attempt.
    auto result = std::make_shared<sim::RunMeasurement>();
    DeadlineTask task = pool_.submit_with_deadline(
        [result, &measure, attempt](const CancellationToken&) {
          *result = measure(attempt);
        },
        std::chrono::milliseconds(
            static_cast<std::int64_t>(policy_.deadline_ms)));

    if (!task.wait_until_deadline()) {
      ++report_.deadline_overruns;
      metrics.deadline_overruns.inc();
      last_reason = "deadline overrun (" + std::to_string(policy_.deadline_ms) +
                    " ms)";
      continue;
    }

    try {
      task.future.get();
      validate_measurement(*result, reference_time_s, bounds_);
    } catch (const classified_error& e) {
      last_reason = e.what();
      if (e.error_class() == ErrorClass::kPermanent) break;
      if (e.error_class() == ErrorClass::kCorruptedData) {
        ++report_.corrupted_readings;
      } else {
        ++report_.transient_faults;
      }
      continue;
    } catch (const std::exception& e) {
      // Unknown exceptions carry no retry semantics: fail the cell now.
      last_reason = e.what();
      break;
    }

    ++report_.cells_ok;
    metrics.cells_ok.inc();
    metrics.attempts_per_cell.observe(static_cast<double>(attempt + 1));
    return *result;
  }

  ++report_.cells_quarantined;
  metrics.cells_quarantined.inc();
  metrics.attempts_per_cell.observe(static_cast<double>(
      std::min(attempt + 1, policy_.max_attempts)));
  report_.quarantined.push_back(
      QuarantinedCell{tag, last_reason, std::min(attempt + 1,
                                                 policy_.max_attempts)});
  COLOC_LOG_WARN << "quarantined cell " << tag << " after "
                 << report_.quarantined.back().attempts
                 << " attempts: " << last_reason;
  return std::nullopt;
}

}  // namespace coloc::fault
