#include "fault/checkpoint.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "store/file_ops.hpp"

namespace coloc::fault {

namespace {
struct CheckpointMetrics {
  obs::Counter& writes;
  obs::Counter& rows_loaded;

  static CheckpointMetrics& get() {
    auto& registry = obs::Registry::global();
    static CheckpointMetrics metrics{
        registry.counter("checkpoint_writes_total"),
        registry.counter("checkpoint_rows_loaded_total"),
    };
    return metrics;
  }
};

std::string format_double(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buffer;
}
}  // namespace

CampaignCheckpoint::CampaignCheckpoint(std::string path,
                                       std::vector<std::string> feature_names,
                                       std::string target_name,
                                       std::size_t flush_every)
    : path_(std::move(path)), feature_names_(std::move(feature_names)),
      target_name_(std::move(target_name)), flush_every_(flush_every) {
  COLOC_CHECK_MSG(!path_.empty(), "checkpoint needs a path");
  COLOC_CHECK_MSG(!feature_names_.empty(), "checkpoint needs feature names");
}

const CheckpointRow* CampaignCheckpoint::find(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = rows_.find(tag);
  return it == rows_.end() ? nullptr : &it->second;
}

std::size_t CampaignCheckpoint::load() {
  std::ifstream is(path_);
  if (!is) return 0;  // no previous state: fresh run
  const CsvTable table = CsvTable::parse(is);
  std::lock_guard<std::mutex> lock(mutex_);

  std::vector<std::string> expected = {"tag", target_name_};
  expected.insert(expected.end(), feature_names_.begin(),
                  feature_names_.end());
  if (table.header() != expected) {
    throw data_error("checkpoint " + path_ +
                     " has a mismatched header; refusing to resume an "
                     "incompatible campaign");
  }

  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    CheckpointRow row;
    row.target = table.at_double(r, 1);
    row.features.reserve(feature_names_.size());
    for (std::size_t c = 0; c < feature_names_.size(); ++c) {
      row.features.push_back(table.at_double(r, c + 2));
    }
    if (!std::isfinite(row.target)) {
      throw data_error("checkpoint " + path_ + " row " + std::to_string(r) +
                       " has a non-finite target");
    }
    rows_[table.at(r, 0)] = std::move(row);
  }
  CheckpointMetrics::get().rows_loaded.inc(table.num_rows());
  COLOC_LOG_INFO << "resumed " << rows_.size() << " completed cells from "
                 << path_;
  return rows_.size();
}

void CampaignCheckpoint::record(const std::string& tag,
                                std::span<const double> features,
                                double target) {
  COLOC_CHECK_MSG(features.size() == feature_names_.size(),
                  "checkpoint feature width mismatch");
  CheckpointRow row;
  row.target = target;
  row.features.assign(features.begin(), features.end());
  std::lock_guard<std::mutex> lock(mutex_);
  rows_[tag] = std::move(row);
  if (flush_every_ > 0 && ++dirty_ >= flush_every_) flush_locked();
}

void CampaignCheckpoint::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
}

void CampaignCheckpoint::flush_locked() {
  std::ostringstream os;
  os << "tag," << csv_escape(target_name_);
  for (const auto& name : feature_names_) os << ',' << csv_escape(name);
  os << '\n';
  for (const auto& [tag, row] : rows_) {
    os << csv_escape(tag) << ',' << format_double(row.target);
    for (double v : row.features) os << ',' << format_double(v);
    os << '\n';
  }
  // Durable atomic replace: the old rename-only path could publish a
  // checkpoint whose data blocks were still unflushed, so a power cut
  // after the rename left a committed name pointing at torn contents.
  store::write_file_atomic(path_, os.str());
  dirty_ = 0;
  CheckpointMetrics::get().writes.inc();
}

}  // namespace coloc::fault
