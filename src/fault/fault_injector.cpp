#include "fault/fault_injector.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace coloc::fault {

namespace {
obs::Counter& injected_counter(FaultKind kind) {
  return obs::Registry::global().counter("fault_injected_total",
                                         {{"kind", to_string(kind)}});
}

std::string alone_key(const std::string& app, std::size_t pstate) {
  return app + "|-|x0|p" + std::to_string(pstate);
}

std::string colocated_key(const std::string& target, const std::string& co,
                          std::size_t count, std::size_t pstate) {
  return target + "|" + co + "|x" + std::to_string(count) + "|p" +
         std::to_string(pstate);
}
}  // namespace

FaultInjector::FaultInjector(sim::MeasurementSource& inner,
                             const FaultPlan& plan)
    : inner_(inner), plan_(plan) {}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  return injected_by_kind_[static_cast<std::size_t>(kind)].load(
      std::memory_order_relaxed);
}

void FaultInjector::note(FaultKind kind) {
  injected_by_kind_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  injected_counter(kind).inc();
}

void FaultInjector::hang() const {
  // Stall in small slices so a cancelled deadline frees the worker fast;
  // the cap bounds call sites that run without any deadline at all.
  obs::ScopedSpan span("fault/hang", "fault");
  const auto give_up =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(plan_.config().hang_cap_ms));
  while (!CancellationScope::current_cancelled() &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void FaultInjector::corrupt(const std::string& cell_key, std::uint64_t attempt,
                            sim::RunMeasurement& m) const {
  switch (plan_.corruption_variant(cell_key, attempt, 4)) {
    case 0:  // wall time lost entirely
      m.execution_time_s = std::numeric_limits<double>::quiet_NaN();
      break;
    case 1:  // counter underflow reported as a negative reading
      m.counters.set(sim::PresetEvent::kLlcMisses, -1.0);
      break;
    case 2:  // multiplexing starved the event group: everything reads zero
      for (std::size_t e = 0; e < sim::kNumPresetEvents; ++e)
        m.counters.set(static_cast<sim::PresetEvent>(e), 0.0);
      break;
    default:  // an infinite ratio from a zeroed divisor
      m.counters.set(sim::PresetEvent::kLlcAccesses,
                     std::numeric_limits<double>::infinity());
      break;
  }
}

template <typename MeasureFn>
sim::RunMeasurement FaultInjector::inject(const std::string& cell_key,
                                          MeasurePhase phase,
                                          std::uint64_t attempt,
                                          MeasureFn&& measure) {
  const FaultKind kind = plan_.decide(cell_key, attempt, phase);
  if (kind == FaultKind::kNone) return measure();
  note(kind);
  switch (kind) {
    case FaultKind::kTransient:
      throw MeasurementError(ErrorClass::kTransient,
                             "injected transient fault: " + cell_key);
    case FaultKind::kHang: {
      hang();
      if (CancellationScope::current_cancelled()) {
        throw MeasurementError(ErrorClass::kTransient,
                               "injected hang cancelled: " + cell_key);
      }
      // Survived the cap without a deadline firing: measure normally.
      return measure();
    }
    case FaultKind::kCorruptedReading: {
      sim::RunMeasurement m = measure();
      corrupt(cell_key, attempt, m);
      return m;
    }
    case FaultKind::kOutlierNoise: {
      sim::RunMeasurement m = measure();
      m.execution_time_s *= plan_.outlier_factor(cell_key, attempt);
      return m;
    }
    case FaultKind::kNone: break;
  }
  return measure();
}

sim::RunMeasurement FaultInjector::run_alone(const sim::ApplicationSpec& app,
                                             std::size_t pstate_index,
                                             std::uint64_t repetition) {
  return inject(alone_key(app.name, pstate_index), MeasurePhase::kBaseline,
                repetition, [&] {
                  return inner_.run_alone(app, pstate_index, repetition);
                });
}

sim::RunMeasurement FaultInjector::run_colocated(
    const sim::ApplicationSpec& target,
    const std::vector<sim::ApplicationSpec>& coapps, std::size_t pstate_index,
    std::uint64_t repetition) {
  const std::string& co_name = coapps.empty() ? "-" : coapps.front().name;
  return inject(
      colocated_key(target.name, co_name, coapps.size(), pstate_index),
      MeasurePhase::kCampaign, repetition, [&] {
        return inner_.run_colocated(target, coapps, pstate_index, repetition);
      });
}

std::optional<counters::HostBaseline> profile_kernel_resilient(
    const counters::MicrobenchSpec& spec, const FaultPlan& plan,
    std::uint64_t attempt) {
  const std::string cell_key = "host|" + spec.name;
  const FaultKind kind =
      plan.decide(cell_key, attempt, MeasurePhase::kBaseline);
  if (kind == FaultKind::kTransient) {
    injected_counter(kind).inc();
    throw MeasurementError(ErrorClass::kTransient,
                           "injected transient fault: " + cell_key);
  }
  auto baseline = counters::profile_kernel(spec);
  if (!baseline) return std::nullopt;
  if (kind == FaultKind::kCorruptedReading) {
    injected_counter(kind).inc();
    baseline->execution_time_s = std::numeric_limits<double>::quiet_NaN();
  } else if (kind == FaultKind::kOutlierNoise) {
    injected_counter(kind).inc();
    baseline->execution_time_s *= plan.outlier_factor(cell_key, attempt);
  }
  // A corrupted host reading must not slip through: validate the basics.
  if (!std::isfinite(baseline->execution_time_s) ||
      baseline->execution_time_s <= 0.0) {
    throw MeasurementError(ErrorClass::kCorruptedData,
                           "non-finite host wall time: " + cell_key);
  }
  return baseline;
}

}  // namespace coloc::fault
