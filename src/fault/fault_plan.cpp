#include "fault/fault_plan.hpp"

#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace coloc::fault {

namespace {
const char* env_or_null(const char* name) { return std::getenv(name); }

double env_double(const char* name, double fallback) {
  const char* raw = env_or_null(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') {
    throw invalid_argument_error(std::string(name) + ": cannot parse '" +
                                 raw + "' as a number");
  }
  return value;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = env_or_null(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    throw invalid_argument_error(std::string(name) + ": cannot parse '" +
                                 raw + "' as an integer");
  }
  return static_cast<std::uint64_t>(value);
}

std::vector<std::string_view> split_csv(std::string_view spec) {
  std::vector<std::string_view> out;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string_view::npos) break;
    spec.remove_prefix(comma + 1);
  }
  return out;
}
}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTransient: return "transient";
    case FaultKind::kCorruptedReading: return "corrupt";
    case FaultKind::kOutlierNoise: return "outlier";
    case FaultKind::kHang: return "hang";
  }
  return "unknown";
}

std::vector<FaultKind> parse_fault_kinds(std::string_view spec) {
  std::vector<FaultKind> kinds;
  for (std::string_view item : split_csv(spec)) {
    if (item == "transient") {
      kinds.push_back(FaultKind::kTransient);
    } else if (item == "corrupt" || item == "corrupted") {
      kinds.push_back(FaultKind::kCorruptedReading);
    } else if (item == "outlier") {
      kinds.push_back(FaultKind::kOutlierNoise);
    } else if (item == "hang") {
      kinds.push_back(FaultKind::kHang);
    } else {
      throw invalid_argument_error("unknown fault kind: '" +
                                   std::string(item) + "'");
    }
  }
  return kinds;
}

FaultPlanConfig FaultPlanConfig::from_env() {
  FaultPlanConfig config;
  config.rate = env_double("COLOC_FAULT_RATE", config.rate);
  if (config.rate < 0.0 || config.rate > 1.0) {
    throw invalid_argument_error("COLOC_FAULT_RATE must be in [0, 1]");
  }
  config.seed = env_u64("COLOC_FAULT_SEED", config.seed);
  if (const char* kinds = env_or_null("COLOC_FAULT_KINDS")) {
    config.kinds = parse_fault_kinds(kinds);
  }
  if (const char* phases = env_or_null("COLOC_FAULT_PHASES")) {
    config.inject_baseline = false;
    config.inject_campaign = false;
    for (std::string_view item : split_csv(phases)) {
      if (item == "baseline") {
        config.inject_baseline = true;
      } else if (item == "campaign") {
        config.inject_campaign = true;
      } else {
        throw invalid_argument_error("unknown fault phase: '" +
                                     std::string(item) + "'");
      }
    }
  }
  config.hang_cap_ms = env_double("COLOC_FAULT_HANG_MS", config.hang_cap_ms);
  return config;
}

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(std::move(config)) {
  COLOC_CHECK_MSG(config_.rate >= 0.0 && config_.rate <= 1.0,
                  "fault rate must be in [0, 1]");
  COLOC_CHECK_MSG(config_.outlier_min_factor > 1.0 &&
                      config_.outlier_max_factor >= config_.outlier_min_factor,
                  "outlier factor range must be > 1 and ordered");
  enabled_kinds_ = config_.kinds;
  if (enabled_kinds_.empty()) {
    enabled_kinds_ = {FaultKind::kTransient, FaultKind::kCorruptedReading,
                      FaultKind::kOutlierNoise};
  }
}

std::uint64_t FaultPlan::mix(std::string_view cell_key, std::uint64_t attempt,
                             std::uint64_t salt) const {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ config_.seed;
  for (char c : cell_key) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;  // FNV-1a step
  }
  h ^= attempt * 0x9e3779b97f4a7c15ULL;
  h ^= salt * 0x2545f4914f6cdd1dULL;
  return splitmix64(h);
}

FaultKind FaultPlan::decide(std::string_view cell_key, std::uint64_t attempt,
                            MeasurePhase phase) const {
  if (!enabled()) return FaultKind::kNone;
  if (phase == MeasurePhase::kBaseline && !config_.inject_baseline)
    return FaultKind::kNone;
  if (phase == MeasurePhase::kCampaign && !config_.inject_campaign)
    return FaultKind::kNone;
  Rng rng(mix(cell_key, attempt, 0x1));
  if (!rng.bernoulli(config_.rate)) return FaultKind::kNone;
  return enabled_kinds_[rng.uniform_index(enabled_kinds_.size())];
}

double FaultPlan::outlier_factor(std::string_view cell_key,
                                 std::uint64_t attempt) const {
  Rng rng(mix(cell_key, attempt, 0x2));
  return rng.uniform(config_.outlier_min_factor, config_.outlier_max_factor);
}

std::uint64_t FaultPlan::corruption_variant(std::string_view cell_key,
                                            std::uint64_t attempt,
                                            std::uint64_t n) const {
  COLOC_CHECK_MSG(n > 0, "variant count must be positive");
  Rng rng(mix(cell_key, attempt, 0x3));
  return rng.uniform_index(n);
}

}  // namespace coloc::fault
