#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/error.hpp"

namespace coloc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunk) {
  if (n == 0) return;
  if (chunk == 0) {
    // Aim for ~4 chunks per worker to balance load without much overhead.
    chunk = std::max<std::size_t>(1, n / (pool.size() * 4));
  }
  std::vector<std::future<void>> futures;
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t end = std::min(n, start + chunk);
    futures.push_back(pool.submit([&, start, end] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        for (std::size_t i = start; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace coloc
