#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace coloc {

namespace {
// Shared across all pools: one process-wide view of scheduling pressure.
struct PoolMetrics {
  obs::Gauge& queue_depth;
  obs::Histogram& wait_seconds;
  obs::Histogram& run_seconds;
  obs::Counter& tasks;

  static PoolMetrics& get() {
    static PoolMetrics metrics{
        obs::Registry::global().gauge("threadpool_queue_depth"),
        obs::Registry::global().histogram("threadpool_task_wait_seconds"),
        obs::Registry::global().histogram("threadpool_task_run_seconds"),
        obs::Registry::global().counter("threadpool_tasks_total"),
    };
    return metrics;
  }
};

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

thread_local const CancellationToken* t_current_token = nullptr;

thread_local bool t_on_worker_thread = false;
}  // namespace

bool on_worker_thread() { return t_on_worker_thread; }

CancellationScope::CancellationScope(CancellationToken token)
    : previous_(t_current_token), token_(std::move(token)) {
  t_current_token = &token_;
}

CancellationScope::~CancellationScope() { t_current_token = previous_; }

bool CancellationScope::current_cancelled() {
  return t_current_token != nullptr && t_current_token->cancelled();
}

bool DeadlineTask::wait_until_deadline() {
  if (future.wait_until(deadline) == std::future_status::ready) return true;
  token.request_cancel();
  return false;
}

void ThreadPool::throw_if_abandoned(const CancellationToken& token) {
  if (token.cancelled()) {
    throw coloc::runtime_error(
        "task cancelled before it started (deadline expired in queue)");
  }
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    COLOC_CHECK_MSG(!stopping_,
                    "ThreadPool::submit called after shutdown; the task "
                    "would never run");
    queue_.push(Task{std::move(fn), std::chrono::steady_clock::now()});
    depth = queue_.size();
  }
  PoolMetrics::get().queue_depth.set(static_cast<double>(depth));
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      metrics.queue_depth.set(static_cast<double>(queue_.size()));
    }
    const auto started = std::chrono::steady_clock::now();
    metrics.wait_seconds.observe(seconds_between(task.enqueued, started));
    task.fn();
    metrics.run_seconds.observe(
        seconds_between(started, std::chrono::steady_clock::now()));
    metrics.tasks.inc();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunk) {
  if (n == 0) return;
  if (on_worker_thread() || pool.size() <= 1) {
    // Nested (or degenerate) fan-out: run inline. See the header contract.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (chunk == 0) {
    // Aim for ~4 chunks per worker to balance load without much overhead.
    chunk = std::max<std::size_t>(1, n / (pool.size() * 4));
  }
  std::vector<std::future<void>> futures;
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t end = std::min(n, start + chunk);
    futures.push_back(pool.submit([&, start, end] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        for (std::size_t i = start; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

namespace {
std::atomic<std::size_t> g_configured_jobs{0};  // 0 = env / hardware

std::size_t jobs_from_env() {
  const char* raw = std::getenv("COLOC_JOBS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  return (end == raw || *end != '\0' || value < 0)
             ? 0
             : static_cast<std::size_t>(value);
}
}  // namespace

std::size_t configured_jobs() {
  std::size_t jobs = g_configured_jobs.load(std::memory_order_relaxed);
  if (jobs == 0) jobs = jobs_from_env();
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return jobs;
}

void set_configured_jobs(std::size_t jobs) {
  g_configured_jobs.store(jobs, std::memory_order_relaxed);
}

ThreadPool& global_pool() {
  static ThreadPool pool(configured_jobs());
  return pool;
}

}  // namespace coloc
