#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace coloc {

namespace {
// Shared across all pools: one process-wide view of scheduling pressure.
struct PoolMetrics {
  obs::Gauge& queue_depth;
  obs::Histogram& wait_seconds;
  obs::Histogram& run_seconds;
  obs::Counter& tasks;

  static PoolMetrics& get() {
    static PoolMetrics metrics{
        obs::Registry::global().gauge("pool_queue_depth"),
        obs::Registry::global().histogram("pool_queue_wait_seconds"),
        obs::Registry::global().histogram("pool_exec_seconds"),
        obs::Registry::global().counter("pool_tasks_total"),
    };
    return metrics;
  }
};

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

thread_local const CancellationToken* t_current_token = nullptr;

thread_local bool t_on_worker_thread = false;
}  // namespace

bool on_worker_thread() { return t_on_worker_thread; }

CancellationScope::CancellationScope(CancellationToken token)
    : previous_(t_current_token), token_(std::move(token)) {
  t_current_token = &token_;
}

CancellationScope::~CancellationScope() { t_current_token = previous_; }

bool CancellationScope::current_cancelled() {
  return t_current_token != nullptr && t_current_token->cancelled();
}

bool DeadlineTask::wait_until_deadline() {
  if (future.wait_until(deadline) == std::future_status::ready) return true;
  token.request_cancel();
  return false;
}

void ThreadPool::throw_if_abandoned(const CancellationToken& token) {
  if (token.cancelled()) {
    throw coloc::runtime_error(
        "task cancelled before it started (deadline expired in queue)");
  }
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Build the process-wide metrics (and the registry behind them) from the
  // constructing thread, before any worker exists. Workers touch both
  // lazily, and a first touch from a worker would construct the registry
  // *after* this pool — which at exit destroys it *before* the pool joins
  // its workers, leaving them racing a freed registry.
  PoolMetrics::get();
  worker_stats_ = std::vector<WorkerStats>(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.workers = worker_stats_.size();
  const std::uint64_t now_ns = obs::trace_now_ns();
  for (const WorkerStats& w : worker_stats_) {
    s.busy_seconds += static_cast<double>(
                          w.busy_ns.load(std::memory_order_relaxed)) *
                      1e-9;
    std::uint64_t idle = w.idle_ns.load(std::memory_order_relaxed);
    if (w.waiting.load(std::memory_order_acquire)) {
      // A wait is booked when it ends; count the open one up to "now" so
      // an idle (but alive) pool reads as idle rather than unaccounted.
      const std::uint64_t start =
          w.wait_start_ns.load(std::memory_order_relaxed);
      if (now_ns > start) idle += now_ns - start;
    }
    s.idle_seconds += static_cast<double>(idle) * 1e-9;
    s.tasks += w.tasks.load(std::memory_order_relaxed);
  }
  return s;
}

void ThreadPool::set_instrument_stride(std::size_t stride) {
  instrument_stride_.store(stride == 0 ? 1 : stride,
                           std::memory_order_relaxed);
}

void ThreadPool::enqueue(std::function<void()> fn) {
  const std::size_t stride = instrument_stride_.load(std::memory_order_relaxed);
  const bool instrument =
      stride <= 1 ||
      task_seq_.fetch_add(1, std::memory_order_relaxed) % stride == 0;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    COLOC_CHECK_MSG(!stopping_,
                    "ThreadPool::submit called after shutdown; the task "
                    "would never run");
    queue_.push(Task{std::move(fn),
                     instrument ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{},
                     instrument ? obs::current_span_id() : 0, instrument});
    depth = queue_.size();
  }
  if (instrument) {
    PoolMetrics::get().queue_depth.set(static_cast<double>(depth));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_on_worker_thread = true;
  PoolMetrics& metrics = PoolMetrics::get();
  WorkerStats& mine = worker_stats_[worker_index];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Publish the wait start before raising the flag so stats() (which
      // reads flag-then-start with acquire) never sees a stale start.
      mine.wait_start_ns.store(obs::trace_now_ns(),
                               std::memory_order_relaxed);
      mine.waiting.store(true, std::memory_order_release);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      const std::uint64_t wait_end = obs::trace_now_ns();
      const std::uint64_t wait_start =
          mine.wait_start_ns.load(std::memory_order_relaxed);
      mine.waiting.store(false, std::memory_order_relaxed);
      if (wait_end > wait_start) {
        mine.idle_ns.fetch_add(wait_end - wait_start,
                               std::memory_order_relaxed);
      }
      // The final wait (stopping_ with a drained queue) falls out of the
      // booking above as idle, never busy: workers parked at shutdown did
      // no work while parked.
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      // Claimed under the lock so quiesce() never observes an empty queue
      // while a popped-but-uncounted task is in flight.
      busy_workers_.fetch_add(1, std::memory_order_relaxed);
      if (task.instrument) {
        metrics.queue_depth.set(static_cast<double>(queue_.size()));
      }
    }
    const auto started = std::chrono::steady_clock::now();
    if (task.instrument) {
      metrics.wait_seconds.observe(seconds_between(task.enqueued, started));
      obs::trace_counter(
          "pool/busy_workers",
          static_cast<double>(busy_workers_.load(std::memory_order_relaxed)));
      // The task span is parented on the span open at submit time — the
      // cross-thread dependency edge obs::attribution's critical-path
      // pass walks.
      obs::ScopedSpan span("pool/task", "pool", task.submit_span_id);
      task.fn();
    } else {
      task.fn();
    }
    const auto finished = std::chrono::steady_clock::now();
    mine.busy_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(finished -
                                                                 started)
                .count()),
        std::memory_order_relaxed);
    mine.tasks.fetch_add(1, std::memory_order_relaxed);
    metrics.tasks.inc();
    if (task.instrument) {
      metrics.run_seconds.observe(seconds_between(started, finished));
    }
    {
      // Retired last, under the lock: once quiesce() sees the count hit
      // zero, the task's span and every metric above are already booked.
      std::lock_guard<std::mutex> lock(mutex_);
      busy_workers_.fetch_sub(1, std::memory_order_relaxed);
    }
    idle_cv_.notify_all();
    if (task.instrument) {
      obs::trace_counter(
          "pool/busy_workers",
          static_cast<double>(busy_workers_.load(std::memory_order_relaxed)));
    }
  }
}

void ThreadPool::quiesce() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return queue_.empty() && busy_workers_.load(std::memory_order_relaxed) == 0;
  });
}

void export_stage_pool_gauges(const std::string& stage, const PoolStats& s) {
  auto& registry = obs::Registry::global();
  const obs::Labels labels = {{"stage", stage}};
  registry.gauge("stage_pool_busy_seconds", labels).set(s.busy_seconds);
  registry.gauge("stage_pool_idle_seconds", labels).set(s.idle_seconds);
  registry.gauge("stage_pool_workers", labels)
      .set(static_cast<double>(s.workers));
  registry.gauge("stage_pool_utilization", labels).set(s.utilization());
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunk) {
  if (n == 0) return;
  if (on_worker_thread() || pool.size() <= 1) {
    // Nested (or degenerate) fan-out: run inline. See the header contract.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (chunk == 0) {
    // Aim for ~4 chunks per worker to balance load without much overhead.
    chunk = std::max<std::size_t>(1, n / (pool.size() * 4));
  }
  std::vector<std::future<void>> futures;
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t end = std::min(n, start + chunk);
    futures.push_back(pool.submit([&, start, end] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        for (std::size_t i = start; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

namespace {
std::atomic<std::size_t> g_configured_jobs{0};  // 0 = env / hardware

std::size_t jobs_from_env() {
  const char* raw = std::getenv("COLOC_JOBS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  return (end == raw || *end != '\0' || value < 0)
             ? 0
             : static_cast<std::size_t>(value);
}
}  // namespace

std::size_t configured_jobs() {
  std::size_t jobs = g_configured_jobs.load(std::memory_order_relaxed);
  if (jobs == 0) jobs = jobs_from_env();
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return jobs;
}

void set_configured_jobs(std::size_t jobs) {
  g_configured_jobs.store(jobs, std::memory_order_relaxed);
}

ThreadPool& global_pool() {
  static ThreadPool pool(configured_jobs());
  return pool;
}

}  // namespace coloc
