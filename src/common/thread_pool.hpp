// Fixed-size thread pool plus a blocking parallel_for.
//
// The bootstrap validation harness trains 100 model partitions per feature
// set; these are embarrassingly parallel and scheduled through this pool.
//
// Instrumentation (see src/obs/): the pool maintains a queue-depth gauge
// (`pool_queue_depth`), queue-wait and execution histograms
// (`pool_queue_wait_seconds`, `pool_exec_seconds`) and a task counter
// (`pool_tasks_total`) in the global metrics registry; per-worker
// busy/idle accounting is exposed via stats(). When a TraceSink is
// installed each task additionally emits a "pool/task" span parented on
// the span that submitted it (the cross-thread dependency edge walked by
// obs::attribution) and a "pool/busy_workers" counter timeline.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace coloc {

/// Copyable handle to a shared cancellation flag. Cancellation is
/// cooperative: long-running tasks poll cancelled() (directly or through
/// CancellationScope::current_cancelled()) and bail out early. Requesting
/// cancellation never interrupts a task forcibly.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const {
    flag_->store(true, std::memory_order_relaxed);
  }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// RAII registration of a token as "current" for the calling thread, so
/// library code deep inside a task can poll for cancellation without the
/// token being threaded through every signature (e.g. the fault injector's
/// artificial hangs end early once their cell's deadline expires).
class CancellationScope {
 public:
  explicit CancellationScope(CancellationToken token);
  ~CancellationScope();
  CancellationScope(const CancellationScope&) = delete;
  CancellationScope& operator=(const CancellationScope&) = delete;

  /// True when a scope is active on this thread and its token is cancelled.
  static bool current_cancelled();

 private:
  const CancellationToken* previous_;
  CancellationToken token_;
};

/// A task submitted with a deadline: the future for completion and the
/// token the runner cancels when the deadline expires.
struct DeadlineTask {
  std::future<void> future;
  CancellationToken token;
  std::chrono::steady_clock::time_point deadline;

  /// Waits until the deadline. Returns true if the task finished in time
  /// (future.get() then yields its result/exception). On expiry, requests
  /// cancellation and returns false WITHOUT waiting for the task: the
  /// worker frees itself as soon as the task observes the token, so a hung
  /// cell cannot wedge a worker forever — provided the task cooperates.
  bool wait_until_deadline();
};

/// Aggregated per-pool worker accounting, read via ThreadPool::stats().
/// busy covers task execution; idle covers condition-variable waits,
/// including waits still open at the time of the stats() call and the
/// final wait a worker sits in until shutdown() wakes it (so a pool that
/// ran nothing reports utilization ~0, not ~1).
struct PoolStats {
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  std::uint64_t tasks = 0;
  std::size_t workers = 0;

  /// busy / (busy + idle); 0 when the pool never started a wait or task.
  double utilization() const {
    const double total = busy_seconds + idle_seconds;
    return total > 0.0 ? busy_seconds / total : 0.0;
  }
};

/// A minimal task-queue thread pool. Tasks are std::function<void()>;
/// submit() returns a future for completion/exception propagation.
///
/// Shutdown contract: shutdown() (or the destructor) stops intake FIRST,
/// then drains the queue and joins the workers. Any submit() or
/// submit_with_deadline() call racing with — or arriving after — shutdown
/// throws coloc::runtime_error rather than accepting a task that would
/// never run; a task whose submit() returned normally is guaranteed to
/// execute before shutdown() returns.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Stops accepting work, drains the queue, and joins the workers.
  /// Idempotent; also invoked by the destructor.
  void shutdown();

  /// Blocks until the queue is empty and every in-flight task has fully
  /// retired — including its trace span and metric bookkeeping, which run
  /// after the task's future is fulfilled. Call before tearing down a
  /// TraceSink so no worker is still mid-span when the trace is written
  /// (a span recorded after the sink swap is silently dropped, orphaning
  /// its already-recorded children). The pool stays usable afterwards.
  void quiesce();

  /// Snapshot of per-worker busy/idle accounting (valid during the pool's
  /// life and after shutdown). Condition-variable waits still open at the
  /// time of the call are counted as idle up to "now".
  PoolStats stats() const;

  /// Samples the per-task observability extras — queue-wait/exec
  /// histograms, "pool/task" spans, busy-worker trace counters, the
  /// queue-depth gauge — so only every stride-th task pays for them.
  /// Sub-millisecond tasks (coalesced sweep cells) otherwise spend more
  /// time in bookkeeping than in work. busy/idle/task accounting, future
  /// semantics and quiesce() remain exact for every task. 0 or 1 restores
  /// full instrumentation (the default).
  void set_instrument_stride(std::size_t stride);

  /// Enqueues a task; the returned future rethrows any task exception.
  /// Throws coloc::runtime_error if the pool has been shut down — a task
  /// accepted after shutdown would never run.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Enqueues f(token) with a completion deadline measured from now.
  /// The deadline is enforced by DeadlineTask::wait_until_deadline(), which
  /// cancels the token on expiry; a task still queued when its token is
  /// cancelled is dropped without running (its future reports
  /// coloc::runtime_error). Same shutdown contract as submit().
  template <typename F>
  DeadlineTask submit_with_deadline(F&& f, std::chrono::milliseconds timeout) {
    DeadlineTask handle;
    handle.deadline = std::chrono::steady_clock::now() + timeout;
    CancellationToken token = handle.token;
    auto task = std::make_shared<std::packaged_task<void()>>(
        [f = std::forward<F>(f), token]() mutable {
          throw_if_abandoned(token);
          CancellationScope scope(token);
          f(token);
        });
    handle.future = task->get_future();
    enqueue([task] { (*task)(); });
    return handle;
  }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    // Trace span open on the submitting thread at enqueue time (0 = none);
    // the worker parents its "pool/task" span on it so exported traces
    // carry the submit -> execute dependency edge.
    std::uint64_t submit_span_id = 0;
    // False for tasks the instrument stride skipped: the worker runs them
    // without histograms/spans/trace counters.
    bool instrument = true;
  };

  /// Per-worker accounting. Intervals are booked when they end; an open
  /// condition-variable wait is published via waiting/wait_start_ns so
  /// stats() can include it without touching the pool mutex.
  struct WorkerStats {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> wait_start_ns{0};
    std::atomic<bool> waiting{false};
  };

  /// Throws coloc::runtime_error if the token was cancelled before the
  /// task started (deadline expired while it sat in the queue).
  static void throw_if_abandoned(const CancellationToken& token);

  void enqueue(std::function<void()> fn);
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  // Sized once in the constructor, before any worker starts; never resized
  // (the atomics make WorkerStats immovable).
  std::vector<WorkerStats> worker_stats_;
  std::atomic<int> busy_workers_{0};
  std::atomic<std::size_t> instrument_stride_{1};
  std::atomic<std::uint64_t> task_seq_{0};
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  bool stopping_ = false;
};

/// Publishes one stage's pool accounting to the global metrics registry
/// as gauges labeled {stage=...}: stage_pool_busy_seconds,
/// stage_pool_idle_seconds, stage_pool_workers, stage_pool_utilization.
/// Orchestrators call this with their own pool's (or a before/after delta
/// of the global pool's) stats so per-stage numbers are not polluted by
/// idle time the shared pool accrues during other stages; obs::attribution
/// reads these gauges to attribute the serial-vs-parallel wall gap.
void export_stage_pool_gauges(const std::string& stage, const PoolStats& s);

/// Runs body(i) for i in [0, n) across the pool, blocking until all
/// iterations finish. Iterations are chunked to limit scheduling overhead.
/// The first exception thrown by any iteration is rethrown to the caller
/// after all chunks complete.
///
/// Nested-pool awareness: when the caller is itself a pool worker (any
/// pool), the loop runs inline on the calling thread instead of being
/// submitted. A blocking fan-out from inside a worker can deadlock (every
/// worker waiting on chunks only the waiting workers could run) and at
/// best oversubscribes the machine; running inline keeps nested
/// parallelism (parallel validation partitions training MLPs whose SCG
/// restarts would also fan out) correct and composable by construction.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunk = 0);

/// The process-wide parallelism knob: how many workers global_pool() (and
/// orchestration layers that size their own pools from it) should use.
/// Resolution order: the value installed by set_configured_jobs(), else
/// the COLOC_JOBS environment variable, else hardware_concurrency.
/// Always returns at least 1.
std::size_t configured_jobs();

/// Installs the jobs knob (benches parse --jobs into this). 0 clears the
/// override so configured_jobs() falls back to COLOC_JOBS / hardware.
/// Must run before the first global_pool() use to affect its size; later
/// calls still steer orchestrators that consult configured_jobs() per run.
void set_configured_jobs(std::size_t jobs);

/// Convenience: shared process-wide pool sized to configured_jobs().
ThreadPool& global_pool();

/// True when the calling thread is a worker of ANY ThreadPool. Kernels
/// that fan out over global_pool() (e.g. linalg::matmul) must run serially
/// when already on a worker: a blocking parallel_for from inside a worker
/// would wait on chunks that can only run on the thread doing the waiting.
bool on_worker_thread();

}  // namespace coloc
