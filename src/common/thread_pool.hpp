// Fixed-size thread pool plus a blocking parallel_for.
//
// The bootstrap validation harness trains 100 model partitions per feature
// set; these are embarrassingly parallel and scheduled through this pool.
//
// Instrumentation (see src/obs/): the pool maintains a queue-depth gauge
// and task wait/run-time histograms in the global metrics registry.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace coloc {

/// A minimal task-queue thread pool. Tasks are std::function<void()>;
/// submit() returns a future for completion/exception propagation.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Stops accepting work, drains the queue, and joins the workers.
  /// Idempotent; also invoked by the destructor.
  void shutdown();

  /// Enqueues a task; the returned future rethrows any task exception.
  /// Throws coloc::runtime_error if the pool has been shut down — a task
  /// accepted after shutdown would never run.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void enqueue(std::function<void()> fn);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across the pool, blocking until all
/// iterations finish. Iterations are chunked to limit scheduling overhead.
/// The first exception thrown by any iteration is rethrown to the caller
/// after all chunks complete.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunk = 0);

/// Convenience: shared process-wide pool sized to hardware concurrency.
ThreadPool& global_pool();

}  // namespace coloc
