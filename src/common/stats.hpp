// Descriptive statistics used by the evaluation harness and reports.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace coloc {

/// One-pass accumulator (Welford) for mean/variance plus min/max tracking.
/// Usable incrementally, e.g. while streaming simulation results.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;

  std::string to_string() const;
};

double mean(std::span<const double> xs);
/// Sample standard deviation (n-1); 0 for fewer than two samples.
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1]. Copies + sorts internally.
double quantile(std::span<const double> xs, double q);

/// Quantile over data the caller has already sorted ascending.
double quantile_sorted(std::span<const double> sorted, double q);

Summary summarize(std::span<const double> xs);

/// Pearson correlation of two equal-length samples.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  static Histogram build(std::span<const double> xs, double lo, double hi,
                         std::size_t bins);
  std::size_t total() const;
  /// Renders a compact ASCII bar chart (one line per bucket).
  std::string render(std::size_t width = 40) const;
};

}  // namespace coloc
