#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace coloc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  COLOC_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  COLOC_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_sorted(std::span<const double> sorted, double q) {
  COLOC_CHECK(!sorted.empty());
  COLOC_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = copy.front();
  s.max = copy.back();
  s.q25 = quantile_sorted(copy, 0.25);
  s.median = quantile_sorted(copy, 0.50);
  s.q75 = quantile_sorted(copy, 0.75);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " q25=" << q25 << " med=" << median << " q75=" << q75
     << " max=" << max;
  return os.str();
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  COLOC_CHECK_MSG(xs.size() == ys.size(), "correlation needs equal lengths");
  COLOC_CHECK_MSG(xs.size() >= 2, "correlation needs at least two samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Histogram Histogram::build(std::span<const double> xs, double lo, double hi,
                           std::size_t bins) {
  COLOC_CHECK_MSG(bins > 0, "histogram needs at least one bin");
  COLOC_CHECK_MSG(hi > lo, "histogram range must be nonempty");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double x : xs) {
    double idx = (x - lo) * scale;
    std::size_t b = idx <= 0.0 ? 0
                    : idx >= static_cast<double>(bins)
                        ? bins - 1
                        : static_cast<std::size_t>(idx);
    ++h.counts[b];
  }
  return h;
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts) peak = std::max(peak, c);
  std::ostringstream os;
  const double bin_w =
      (hi - lo) / static_cast<double>(counts.empty() ? 1 : counts.size());
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double left = lo + static_cast<double>(b) * bin_w;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << left << ", " << (left + bin_w) << ") ";
    const std::size_t bar = counts[b] * width / peak;
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << "  " << counts[b] << "\n";
  }
  return os.str();
}

}  // namespace coloc
