#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace coloc {

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  COLOC_CHECK_MSG(n > 0, "uniform_index requires n > 0");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  COLOC_CHECK_MSG(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1ULL;  // hi-lo < 2^63 in practice
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  COLOC_CHECK_MSG(rate > 0.0, "exponential requires rate > 0");
  // 1 - uniform() is in (0, 1], avoiding log(0).
  return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  return ZipfSampler(n, s)(*this);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  COLOC_CHECK_MSG(n > 0, "zipf requires n > 0");
  // Rejection-inversion sampling (Hörmann & Derflinger) over [1, n],
  // returning 0-based rank. Handles s close to or equal to 1.
  nd_ = static_cast<double>(n);
  hx0_ = h(0.5) - 1.0;  // shifted so h(x)-hx0 covers mass at 1
  hn_ = h(nd_ + 0.5);
}

double ZipfSampler::h(double x) const {
  // Integral of x^-s: x^(1-s)/(1-s) for s != 1, log(x) otherwise.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  if (n_ == 1) return 0;
  for (;;) {
    const double u = hx0_ + rng.uniform() * (hn_ - hx0_);
    const double x = std::abs(s_ - 1.0) < 1e-12
                         ? std::exp(u)
                         : std::pow((1.0 - s_) * u, 1.0 / (1.0 - s_));
    const std::uint64_t k =
        static_cast<std::uint64_t>(std::clamp(std::floor(x + 0.5), 1.0, nd_));
    const double kd = static_cast<double>(k);
    // Accept with probability proportional to the true mass at k.
    if (u >= h(kd + 0.5) - std::pow(kd, -s_)) return k - 1;
  }
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  COLOC_CHECK_MSG(k <= n, "cannot sample more elements than the population");
  // Partial Fisher-Yates: O(n) memory but only k swaps; fine at our scales.
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    using std::swap;
    swap(p[i], p[j]);
  }
  p.resize(k);
  return p;
}

}  // namespace coloc
