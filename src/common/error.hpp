// Error-handling primitives shared by all coloc modules.
//
// We deliberately use exceptions for contract violations at API boundaries
// (bad configuration, dimension mismatches) and COLOC_ASSERT for internal
// invariants that indicate a programming error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace coloc {

/// Thrown when a caller violates a documented precondition of a public API.
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an operation cannot proceed because of runtime state
/// (e.g. a singular system, a failed fixed point, unavailable hardware).
class runtime_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "COLOC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw coloc::runtime_error(os.str());
}
}  // namespace detail

}  // namespace coloc

/// Validates a runtime condition; throws coloc::runtime_error on failure.
/// Active in all build types: these guard data integrity, not hot loops.
#define COLOC_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::coloc::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define COLOC_CHECK_MSG(expr, msg)                                           \
  do {                                                                       \
    if (!(expr))                                                             \
      ::coloc::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
  } while (0)
