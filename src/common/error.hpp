// Error-handling primitives shared by all coloc modules.
//
// We deliberately use exceptions for contract violations at API boundaries
// (bad configuration, dimension mismatches) and COLOC_ASSERT for internal
// invariants that indicate a programming error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace coloc {

/// Thrown when a caller violates a documented precondition of a public API.
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an operation cannot proceed because of runtime state
/// (e.g. a singular system, a failed fixed point, unavailable hardware).
class runtime_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How a failure relates to retrying. The resilient measurement layer
/// (src/fault) keys its retry/quarantine decisions off this taxonomy; it is
/// shared across layers so sim, counters, ml, and core agree on semantics.
enum class ErrorClass {
  /// Worth retrying: the fault is expected to clear on its own (perf-event
  /// multiplexing dropped a sample, a co-runner burst, an injected glitch).
  kTransient,
  /// Retrying cannot help: bad configuration, missing hardware, an
  /// exhausted retry budget. The caller must quarantine or abort.
  kPermanent,
  /// The operation "succeeded" but produced an unusable reading (NaN or
  /// negative counters, implausible wall time). Retry with a fresh run.
  kCorruptedData,
};

const char* to_string(ErrorClass cls);

/// Base for errors that carry a retry-relevant classification.
class classified_error : public runtime_error {
 public:
  classified_error(ErrorClass cls, const std::string& what)
      : runtime_error(what), class_(cls) {}
  ErrorClass error_class() const { return class_; }

 private:
  ErrorClass class_;
};

/// A profiling or co-location measurement failed. Thrown by the simulated
/// testbed under fault injection, by the host counter backend, and by the
/// reading validators in src/fault.
class MeasurementError : public classified_error {
 public:
  using classified_error::classified_error;
};

/// Data failed an integrity check on ingestion (e.g. non-finite features
/// offered to ml::Dataset). Always classified as corrupted data.
class data_error : public classified_error {
 public:
  explicit data_error(const std::string& what)
      : classified_error(ErrorClass::kCorruptedData, what) {}
};

inline const char* to_string(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kPermanent: return "permanent";
    case ErrorClass::kCorruptedData: return "corrupted-data";
  }
  return "unknown";
}

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "COLOC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw coloc::runtime_error(os.str());
}
}  // namespace detail

}  // namespace coloc

/// Validates a runtime condition; throws coloc::runtime_error on failure.
/// Active in all build types: these guard data integrity, not hot loops.
#define COLOC_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::coloc::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define COLOC_CHECK_MSG(expr, msg)                                           \
  do {                                                                       \
    if (!(expr))                                                             \
      ::coloc::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
  } while (0)
