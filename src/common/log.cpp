#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace coloc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed))
    return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%lld.%03lld] %s %s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), level_name(level),
               msg.c_str());
}

}  // namespace coloc
