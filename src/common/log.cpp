#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "obs/trace.hpp"

namespace coloc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

// Honors COLOC_LOG_LEVEL=debug|info|warn|error (case-insensitive) once,
// on the first logging call. set_log_level() still overrides afterwards.
void init_level_from_env() {
  const char* env = std::getenv("COLOC_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  std::string name;
  for (const char* p = env; *p != '\0'; ++p) {
    name.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (name == "debug") {
    g_level.store(static_cast<int>(LogLevel::kDebug),
                  std::memory_order_relaxed);
  } else if (name == "info") {
    g_level.store(static_cast<int>(LogLevel::kInfo),
                  std::memory_order_relaxed);
  } else if (name == "warn" || name == "warning") {
    g_level.store(static_cast<int>(LogLevel::kWarn),
                  std::memory_order_relaxed);
  } else if (name == "error") {
    g_level.store(static_cast<int>(LogLevel::kError),
                  std::memory_order_relaxed);
  } else {
    std::fprintf(stderr, "coloc: ignoring unknown COLOC_LOG_LEVEL \"%s\"\n",
                 env);
  }
}

// "2026-08-06T12:34:56.789Z" (UTC). `out` must hold >= 32 bytes.
void format_timestamp(char* out, std::size_t out_size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char date[24];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(out, out_size, "%s.%03dZ", date, static_cast<int>(ms));
}
}  // namespace

void set_log_level(LogLevel level) {
  std::call_once(g_env_once, init_level_from_env);
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  std::call_once(g_env_once, init_level_from_env);
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& msg) {
  std::call_once(g_env_once, init_level_from_env);
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed))
    return;
  char timestamp[32];
  format_timestamp(timestamp, sizeof(timestamp));
  const unsigned tid = obs::thread_index();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s [T%02u] %s %s\n", timestamp, tid,
               level_name(level), msg.c_str());
}

}  // namespace coloc
