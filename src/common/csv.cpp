#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace coloc {

void CsvTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    COLOC_CHECK_MSG(row.size() == header_.size(),
                    "CSV row width does not match header");
  }
  rows_.push_back(std::move(row));
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw invalid_argument_error("CSV column not found: " + name);
}

const std::string& CsvTable::at(std::size_t row, std::size_t col) const {
  COLOC_CHECK(row < rows_.size());
  COLOC_CHECK(col < rows_[row].size());
  return rows_[row][col];
}

double CsvTable::at_double(std::size_t row, std::size_t col) const {
  return std::stod(at(row, col));
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvTable::write(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

void CsvTable::save(const std::string& path) const {
  std::ofstream f(path);
  COLOC_CHECK_MSG(f.good(), "cannot open CSV for writing: " + path);
  write(f);
}

namespace {

/// Splits one logical CSV record (handles quotes, consuming extra lines for
/// embedded newlines). Returns false at end of stream with nothing read.
bool read_record(std::istream& is, std::vector<std::string>& fields) {
  fields.clear();
  std::string field;
  bool in_quotes = false;
  bool any = false;
  int c;
  while ((c = is.get()) != EOF) {
    any = true;
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (is.peek() == '"') {
          field += '"';
          is.get();
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      break;
    } else if (ch == '\r') {
      // Swallow; \r\n handled when \n arrives next.
    } else {
      field += ch;
    }
  }
  if (!any) return false;
  fields.push_back(std::move(field));
  return true;
}

}  // namespace

CsvTable CsvTable::parse(std::istream& is) {
  CsvTable t;
  std::vector<std::string> fields;
  if (read_record(is, fields)) t.header_ = fields;
  while (read_record(is, fields)) {
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    t.add_row(fields);
  }
  return t;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream f(path);
  COLOC_CHECK_MSG(f.good(), "cannot open CSV for reading: " + path);
  return parse(f);
}

}  // namespace coloc
