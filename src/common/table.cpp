#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace coloc {

void TextTable::set_columns(std::vector<std::string> names,
                            std::vector<Align> aligns) {
  COLOC_CHECK_MSG(rows_.empty(), "set_columns must precede add_row");
  columns_ = std::move(names);
  if (aligns.empty()) {
    aligns_.assign(columns_.size(), Align::kRight);
    if (!aligns_.empty()) aligns_[0] = Align::kLeft;
  } else {
    COLOC_CHECK_MSG(aligns.size() == columns_.size(),
                    "alignment count must match column count");
    aligns_ = std::move(aligns);
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  COLOC_CHECK_MSG(cells.size() == columns_.size(),
                  "row width must match column count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::num(std::size_t v) { return std::to_string(v); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_cell = [&](const std::string& s, std::size_t c) {
    std::string out;
    const std::size_t pad = widths[c] - s.size();
    if (aligns_[c] == Align::kRight) out.append(pad, ' ');
    out += s;
    if (aligns_[c] == Align::kLeft) out.append(pad, ' ');
    return out;
  };

  std::ostringstream os;
  std::size_t total = 0;
  for (auto w : widths) total += w + 3;
  if (!title_.empty()) {
    os << title_ << "\n";
    os << std::string(std::max<std::size_t>(total, title_.size()), '=')
       << "\n";
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << " | ";
    os << render_cell(columns_[c], c);
  }
  os << "\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      os << render_cell(row[c], c);
    }
    os << "\n";
  }
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << render() << "\n"; }

std::string render_series(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::ostringstream os;
  os << label << ":";
  os << std::fixed << std::setprecision(precision);
  for (double v : values) os << " " << v;
  return os.str();
}

}  // namespace coloc
