// Minimal CSV reading/writing for exporting datasets and experiment series.
//
// Supports quoted fields with embedded commas/quotes/newlines — enough to
// round-trip every file the library produces.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace coloc {

/// In-memory CSV document: a header row plus data rows of strings.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Appends a row; its width must match the header (if a header is set).
  void add_row(std::vector<std::string> row);

  /// Column index by name; throws if absent.
  std::size_t column(const std::string& name) const;

  const std::string& at(std::size_t row, std::size_t col) const;
  double at_double(std::size_t row, std::size_t col) const;

  void write(std::ostream& os) const;
  void save(const std::string& path) const;

  static CsvTable parse(std::istream& is);
  static CsvTable load(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field (adds quotes only when needed).
std::string csv_escape(const std::string& field);

}  // namespace coloc
