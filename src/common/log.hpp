// Tiny leveled logger. Thread-safe; writes to stderr so experiment stdout
// (tables, series, CSV) stays machine-parsable.
#pragma once

#include <sstream>
#include <string>

namespace coloc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a message at the given level (no-op if below the threshold).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace coloc

#define COLOC_LOG_DEBUG ::coloc::detail::LogLine(::coloc::LogLevel::kDebug)
#define COLOC_LOG_INFO ::coloc::detail::LogLine(::coloc::LogLevel::kInfo)
#define COLOC_LOG_WARN ::coloc::detail::LogLine(::coloc::LogLevel::kWarn)
#define COLOC_LOG_ERROR ::coloc::detail::LogLine(::coloc::LogLevel::kError)
