// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (trace generators, measurement
// noise, bootstrap partitioning, neural-network initialization) draw from
// coloc::Rng so that experiments are reproducible from a single seed.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
// It is far faster than std::mt19937_64, has a 256-bit state, and passes
// BigCrush; its statistical quality is more than sufficient for simulation
// and ML workloads.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace coloc {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Also usable standalone for cheap hash-like mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with a std::uniform_random_bit_generator-compatible
/// interface plus convenience distributions used throughout coloc.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose full 256-bit state is derived from `seed`
  /// via SplitMix64, so distinct seeds give decorrelated streams.
  explicit Rng(std::uint64_t seed = 0x1234abcdULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> double mantissa; unbiased and fast.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Marsaglia polar method (cached spare value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal: exp(N(mu, sigma)). Used for multiplicative measurement noise.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Zipf-like discrete sample over [0, n) with exponent s (hot-spot reuse
  /// patterns in address traces). Uses inverse-CDF over precomputable weights
  /// only for small n; otherwise rejection sampling.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Returns a random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Splits this generator into an independent child stream; the child's
  /// seed is derived from fresh output so parent/child remain decorrelated.
  Rng split() { return Rng(next() ^ 0x5851f42d4c957f2dULL); }

 private:
  result_type next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// Zipf sampler with the per-distribution constants (two pow() calls)
/// hoisted out of the draw loop. Rng::zipf(n, s) constructs one of these
/// per call, so sampler draws are bit-identical to Rng::zipf for the same
/// generator state — batch kernels that sample many values from one phase
/// build the sampler once and save the constant recomputation.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  /// Draws one 0-based rank; consumes exactly the uniform() sequence
  /// Rng::zipf(n, s) would.
  std::uint64_t operator()(Rng& rng) const;

 private:
  double h(double x) const;

  std::uint64_t n_;
  double s_;
  double nd_;
  double hx0_;  // h(0.5) - 1, lower bound of the inversion range
  double hn_;   // h(n + 0.5), upper bound
};

}  // namespace coloc
