// Bridges the model zoo (src/core) to the crash-safe artifact store
// (src/store): train the full {technique x feature set} zoo on a campaign
// dataset, persist it as a checksummed bundle, and reload it with
// targeted repair — a quarantined or missing entry retrains just that one
// model (deterministically, so the repaired bytes match the originals)
// instead of throwing the whole zoo away.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/model_zoo.hpp"
#include "ml/dataset.hpp"
#include "store/zoo_store.hpp"

namespace coloc::core {

/// Parses a ModelId::name() string ("linear-A" ... "nn-F"). Throws
/// coloc::invalid_argument_error on unknown technique or feature set.
ModelId parse_model_id(const std::string& name);

/// The twelve paper identities, technique-major then set A-F.
std::vector<ModelId> all_model_ids();

/// A trained zoo keyed by ModelId::name().
struct TrainedZoo {
  std::vector<ModelId> ids;
  std::map<std::string, ml::RegressorPtr> models;

  const ml::Regressor* find(const std::string& name) const;
};

/// Trains every identity in `ids` on the full dataset. Deterministic:
/// the same dataset + options + ids always yield bit-identical models
/// (training factories are seeded, never clocked).
TrainedZoo train_full_zoo(const ml::Dataset& dataset,
                          const ModelZooOptions& options = {},
                          const std::vector<ModelId>& ids = all_model_ids());

/// Persists a trained zoo as a store bundle under `dir`.
store::ZooSaveResult save_trained_zoo(
    store::FileOps& files, const std::string& dir, const TrainedZoo& zoo,
    std::vector<std::pair<std::string, std::string>> provenance = {});

struct ZooLoadOutcome {
  TrainedZoo zoo;
  store::LoadReport report;  // what the store found on disk
  /// Entries retrained because they were quarantined, missing, or the
  /// bundle had no (valid) manifest at all.
  std::vector<std::string> retrained;
  /// True when the on-disk bundle was rewritten after repair.
  bool repaired = false;
};

/// Loads the zoo bundle at `dir`, verifying every entry. Corrupt or
/// missing entries are retrained from `dataset` (counted in the
/// zoo_models_retrained_total metric); when anything was retrained the
/// bundle is re-saved so the on-disk state is whole again. Never returns
/// a model whose bytes failed verification.
ZooLoadOutcome load_or_repair_zoo(
    store::FileOps& files, const std::string& dir,
    const ml::Dataset& dataset, const ModelZooOptions& options = {},
    const std::vector<ModelId>& ids = all_model_ids(),
    std::vector<std::pair<std::string, std::string>> provenance = {});

}  // namespace coloc::core
