// End-to-end methodology facade (Section III + Section IV-B4).
//
// Ties the pieces together:
//   campaign dataset  ->  12-model evaluation suite (Figures 1-4)
//   campaign dataset  ->  deployable ColocationPredictor (used by sched/)
//   campaign dataset  ->  PCA feature ranking (Section III-B)
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/model_zoo.hpp"
#include "ml/pca.hpp"
#include "ml/validation.hpp"

namespace coloc::core {

struct EvaluationConfig {
  ml::ValidationOptions validation;  // 100 partitions, 30% holdout
  ModelZooOptions zoo;
};

/// Validation outcome of one of the twelve models.
struct ModelEvaluation {
  ModelId id;
  ml::ValidationResult result;
};

/// All twelve evaluations, ordered technique-major then set A-F.
struct EvaluationSuite {
  std::vector<ModelEvaluation> evaluations;

  const ModelEvaluation& find(ModelTechnique technique,
                              FeatureSet set) const;
};

/// Evaluates every {technique x feature set} model on the dataset with
/// repeated random sub-sampling. `collect_predictions_for` optionally tags
/// one model whose held-out predictions are retained (Figure 5b needs the
/// NN-F predictions).
EvaluationSuite evaluate_model_zoo(
    const ml::Dataset& dataset, const EvaluationConfig& config = {},
    std::optional<ModelId> collect_predictions_for = std::nullopt);

/// A deployment-ready predictor: trained once on the full campaign dataset,
/// then queried from baseline profiles only.
class ColocationPredictor {
 public:
  /// Trains the given model identity on all rows of the dataset.
  static ColocationPredictor train(const ml::Dataset& dataset,
                                   const ModelId& id,
                                   const ModelZooOptions& options = {});

  /// Wraps an already-trained model (e.g. one verified entry out of a
  /// store zoo bundle) as a deployable predictor for its identity.
  static ColocationPredictor from_model(const ModelId& id,
                                        ml::RegressorPtr model);

  /// Predicts the target's co-located execution time (seconds) when run at
  /// `pstate_index` next to the given co-runner baselines.
  double predict_time(const BaselineProfile& target,
                      const std::vector<const BaselineProfile*>& coapps,
                      std::size_t pstate_index) const;

  /// Predicted slowdown factor relative to the target's baseline.
  double predict_slowdown(const BaselineProfile& target,
                          const std::vector<const BaselineProfile*>& coapps,
                          std::size_t pstate_index) const;

  const ModelId& id() const { return id_; }

  /// The trained model and its dataset-column selection — exposed so the
  /// placement service (src/serve) can assemble batched design matrices
  /// and call the model's allocation-free predict_into directly.
  const ml::Regressor& model() const { return *model_; }
  const std::vector<std::size_t>& columns() const { return columns_; }

  /// Persists the trained predictor (model + feature-set identity) so a
  /// resource manager can train once and predict across restarts.
  void save(std::ostream& os) const;
  static ColocationPredictor load(std::istream& is);
  void save_file(const std::string& path) const;
  static ColocationPredictor load_file(const std::string& path);

 private:
  ColocationPredictor(ModelId id, ml::RegressorPtr model,
                      std::vector<std::size_t> columns)
      : id_(id), model_(std::move(model)), columns_(std::move(columns)) {}

  ModelId id_;
  ml::RegressorPtr model_;
  std::vector<std::size_t> columns_;
};

/// PCA over the campaign's eight feature columns; returns the fitted
/// decomposition (importance ranking via ml::pca_feature_importance).
ml::PcaResult analyze_features(const ml::Dataset& dataset);

}  // namespace coloc::core
