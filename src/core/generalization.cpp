#include "core/generalization.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace coloc::core {

namespace {

const sim::ApplicationSpec& find_in(
    const std::vector<sim::ApplicationSpec>& apps, const std::string& name) {
  for (const auto& app : apps) {
    if (app.name == name) return app;
  }
  throw coloc::invalid_argument_error("application not in set: " + name);
}

bool is_training_coapp(const std::vector<std::string>& training,
                       const std::string& name) {
  return std::find(training.begin(), training.end(), name) !=
         training.end();
}

GeneralizationScenario random_homogeneous(
    const sim::MachineConfig& machine,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const std::vector<std::string>& pool, Rng& rng, std::size_t pstates) {
  GeneralizationScenario s;
  s.target = all_apps[rng.uniform_index(all_apps.size())].name;
  const std::string co = pool[rng.uniform_index(pool.size())];
  const std::size_t count =
      1 + static_cast<std::size_t>(rng.uniform_index(machine.cores - 1));
  s.coapps.assign(count, co);
  s.pstate_index = static_cast<std::size_t>(rng.uniform_index(pstates));
  return s;
}

}  // namespace

std::vector<GeneralizationScenario> make_seen_scenarios(
    const sim::MachineConfig& machine,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const std::vector<std::string>& training_coapps,
    const GeneralizationOptions& options) {
  COLOC_CHECK_MSG(!training_coapps.empty(), "no training co-runners");
  Rng rng(options.seed);
  std::vector<GeneralizationScenario> scenarios;
  scenarios.reserve(options.scenarios);
  for (std::size_t i = 0; i < options.scenarios; ++i) {
    scenarios.push_back(random_homogeneous(machine, all_apps,
                                           training_coapps, rng,
                                           machine.pstates.size()));
  }
  return scenarios;
}

std::vector<GeneralizationScenario> make_unseen_scenarios(
    const sim::MachineConfig& machine,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const std::vector<std::string>& training_coapps,
    const GeneralizationOptions& options) {
  std::vector<std::string> unseen;
  for (const auto& app : all_apps) {
    if (!is_training_coapp(training_coapps, app.name))
      unseen.push_back(app.name);
  }
  COLOC_CHECK_MSG(!unseen.empty(), "every application was used in training");
  Rng rng(options.seed ^ 0xBEEF);
  std::vector<GeneralizationScenario> scenarios;
  scenarios.reserve(options.scenarios);
  for (std::size_t i = 0; i < options.scenarios; ++i) {
    scenarios.push_back(random_homogeneous(machine, all_apps, unseen, rng,
                                           machine.pstates.size()));
  }
  return scenarios;
}

std::vector<GeneralizationScenario> make_heterogeneous_scenarios(
    const sim::MachineConfig& machine,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const GeneralizationOptions& options) {
  COLOC_CHECK_MSG(all_apps.size() >= 2, "need at least two applications");
  Rng rng(options.seed ^ 0xCAFE);
  std::vector<GeneralizationScenario> scenarios;
  scenarios.reserve(options.scenarios);
  for (std::size_t i = 0; i < options.scenarios; ++i) {
    GeneralizationScenario s;
    s.target = all_apps[rng.uniform_index(all_apps.size())].name;
    // 2..cores-1 co-runners, each drawn independently; retry until the
    // group actually mixes at least two distinct applications.
    const std::size_t count = std::min<std::size_t>(
        machine.cores - 1,
        2 + static_cast<std::size_t>(rng.uniform_index(machine.cores - 2)));
    do {
      s.coapps.clear();
      for (std::size_t c = 0; c < count; ++c) {
        s.coapps.push_back(
            all_apps[rng.uniform_index(all_apps.size())].name);
      }
    } while (std::all_of(s.coapps.begin(), s.coapps.end(),
                         [&s](const std::string& n) {
                           return n == s.coapps.front();
                         }));
    s.pstate_index =
        static_cast<std::size_t>(rng.uniform_index(machine.pstates.size()));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

namespace {

GeneralizationReport::Record evaluate_scenario(
    sim::Simulator& simulator, const ColocationPredictor& predictor,
    const BaselineLibrary& baselines,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const GeneralizationScenario& scenario, std::uint64_t repetition) {
  const sim::ApplicationSpec& target = find_in(all_apps, scenario.target);
  std::vector<sim::ApplicationSpec> coapps;
  std::vector<const BaselineProfile*> co_profiles;
  coapps.reserve(scenario.coapps.size());
  for (const auto& name : scenario.coapps) {
    coapps.push_back(find_in(all_apps, name));
    co_profiles.push_back(&baselines.at(name));
  }

  GeneralizationReport::Record record;
  record.scenario = scenario;
  record.predicted_s = predictor.predict_time(
      baselines.at(scenario.target), co_profiles, scenario.pstate_index);
  record.actual_s =
      simulator
          .run_colocated(target, coapps, scenario.pstate_index, repetition)
          .execution_time_s;
  record.percent_error =
      100.0 * (record.predicted_s - record.actual_s) / record.actual_s;
  return record;
}

double mean_abs_error(
    const std::vector<GeneralizationReport::Record>& records) {
  if (records.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : records) s += std::abs(r.percent_error);
  return s / static_cast<double>(records.size());
}

}  // namespace

GeneralizationReport evaluate_generalization(
    sim::Simulator& simulator, const ColocationPredictor& predictor,
    const BaselineLibrary& baselines,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const std::vector<std::string>& training_coapps,
    const GeneralizationOptions& options) {
  for (const auto& app : all_apps) {
    COLOC_CHECK_MSG(baselines.count(app.name),
                    "missing baseline for " + app.name);
  }

  GeneralizationReport report;
  report.scenarios_per_category = options.scenarios;

  std::uint64_t repetition = options.repetition_offset;
  for (const auto& scenario :
       make_seen_scenarios(simulator.machine(), all_apps, training_coapps,
                           options)) {
    report.seen_records.push_back(evaluate_scenario(
        simulator, predictor, baselines, all_apps, scenario, ++repetition));
  }
  for (const auto& scenario :
       make_unseen_scenarios(simulator.machine(), all_apps, training_coapps,
                             options)) {
    report.unseen_records.push_back(evaluate_scenario(
        simulator, predictor, baselines, all_apps, scenario, ++repetition));
  }
  for (const auto& scenario : make_heterogeneous_scenarios(
           simulator.machine(), all_apps, options)) {
    report.mixed_records.push_back(evaluate_scenario(
        simulator, predictor, baselines, all_apps, scenario, ++repetition));
  }

  report.seen_homogeneous_mpe = mean_abs_error(report.seen_records);
  report.unseen_homogeneous_mpe = mean_abs_error(report.unseen_records);
  report.heterogeneous_mpe = mean_abs_error(report.mixed_records);
  return report;
}

}  // namespace coloc::core
