// Feature-set groups A-F from Table II of the paper.
//
// The sets grow incrementally, simulating "a realistic process where the
// resource management system progressively obtains more detailed
// information about the system and the executing applications":
//   A: baseExTime
//   B: A + numCoApp
//   C: B + coAppMem
//   D: C + targetMem
//   E: D + coAppCM/CA, coAppCA/INS
//   F: E + targetCM/CA, targetCA/INS
#pragma once

#include <string>
#include <vector>

#include "core/features.hpp"

namespace coloc::core {

enum class FeatureSet { kA, kB, kC, kD, kE, kF };

inline constexpr FeatureSet kAllFeatureSets[] = {
    FeatureSet::kA, FeatureSet::kB, FeatureSet::kC,
    FeatureSet::kD, FeatureSet::kE, FeatureSet::kF,
};

std::string to_string(FeatureSet set);

/// Dataset column indices (into the canonical 8-feature layout) used by a
/// feature set, in Table II order.
const std::vector<std::size_t>& feature_set_columns(FeatureSet set);

/// The FeatureIds of a set (same order as feature_set_columns).
std::vector<FeatureId> feature_set_ids(FeatureSet set);

/// Parses "A".."F" (case-insensitive); throws on anything else.
FeatureSet parse_feature_set(const std::string& name);

}  // namespace coloc::core
