#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace coloc::core {

namespace {
// Resolved once; references stay valid for the process lifetime.
struct CampaignMetrics {
  obs::Counter& cells_alone;
  obs::Counter& cells_colocated;
  obs::Counter& baselines;
  obs::Histogram& cell_seconds;

  static CampaignMetrics& get() {
    auto& registry = obs::Registry::global();
    static CampaignMetrics metrics{
        registry.counter("campaign_cells_total", {{"phase", "alone"}}),
        registry.counter("campaign_cells_total", {{"phase", "colocated"}}),
        registry.counter("campaign_baselines_total"),
        registry.histogram("campaign_cell_seconds"),
    };
    return metrics;
  }
};
}  // namespace

CampaignConfig CampaignConfig::paper_defaults() {
  CampaignConfig config;
  config.targets = sim::benchmark_suite();
  for (const std::string& name : sim::training_coapp_names())
    config.coapps.push_back(sim::find_application(name));
  return config;
}

std::string CampaignResult::make_tag(const std::string& target,
                                     const std::string& coapp,
                                     std::size_t count, std::size_t pstate) {
  return target + "|" + coapp + "|x" + std::to_string(count) + "|p" +
         std::to_string(pstate);
}

std::string CampaignResult::tag_target(const std::string& tag) {
  const auto bar = tag.find('|');
  return bar == std::string::npos ? tag : tag.substr(0, bar);
}

namespace {
/// Every campaign cell gets a confirmation read at a disjoint repetition
/// seed, mirroring collect_baseline's guard: a corrupted primary read that
/// slips past the plausibility bounds is caught by run-to-run disagreement
/// instead of poisoning a dataset row. The recorded value is always the
/// primary read, so fault-free campaign numerics are unchanged — and
/// because the confirmation re-requests the same co-location
/// configuration, it is a guaranteed contention-solve cache hit, costing
/// one noise draw rather than a fixed-point solve.
constexpr std::uint64_t kConfirmRepOffset = std::uint64_t{1} << 20;

void check_confirmation(const std::string& tag,
                        const sim::RunMeasurement& primary,
                        const sim::RunMeasurement& confirm) {
  const double ratio = primary.execution_time_s / confirm.execution_time_s;
  if (!(ratio > 1.0 / 3.0 && ratio < 3.0)) {
    throw MeasurementError(
        ErrorClass::kCorruptedData,
        "cell disagrees with its confirmation read: " + tag);
  }
}

/// Shared per-cell bookkeeping for the collection loops below: measure
/// through the runner (or take the row from the checkpoint), append to the
/// dataset, and keep the checkpoint/metrics/progress in sync. Returns
/// false when the cell was quarantined (no row emitted).
struct CellCollector {
  CampaignResult& result;
  fault::ResilientRunner& runner;
  fault::CampaignCheckpoint* checkpoint;
  obs::Histogram& cell_seconds;
  obs::ProgressReporter& progress;
  std::size_t measured_cells = 0;

  bool collect(const std::string& tag, std::span<const double> features,
               double reference_time_s, obs::Counter& cells_metric,
               const fault::ResilientRunner::MeasureFn& measure) {
    obs::ScopedSpan cell_span("campaign/cell", "core");
    const auto cell_start = std::chrono::steady_clock::now();

    if (checkpoint != nullptr) {
      if (const fault::CheckpointRow* row = checkpoint->find(tag)) {
        // Completed in a previous run: replay the stored row verbatim.
        result.dataset.add_row(row->features, row->target, tag);
        ++result.total_runs;
        runner.note_resumed_cell();
        progress.tick();
        return true;
      }
    }

    const auto measurement = runner.measure_cell(tag, reference_time_s,
                                                 measure);
    progress.tick();
    if (!measurement) return false;  // quarantined; reported, no row

    result.dataset.add_row(features, measurement->execution_time_s, tag);
    ++result.total_runs;
    ++measured_cells;
    if (checkpoint != nullptr) {
      checkpoint->record(tag, features, measurement->execution_time_s);
    }
    cells_metric.inc();
    cell_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      cell_start)
            .count());
    return true;
  }
};
}  // namespace

CampaignResult run_campaign(sim::MeasurementSource& source,
                            const CampaignConfig& config,
                            const CampaignRobustness& robustness) {
  COLOC_CHECK_MSG(!config.targets.empty(), "campaign needs target apps");
  COLOC_CHECK_MSG(!config.coapps.empty(), "campaign needs co-runner apps");

  obs::ScopedSpan campaign_span("campaign", "core");
  CampaignMetrics& metrics = CampaignMetrics::get();

  const sim::MachineConfig& machine = source.machine();

  std::vector<std::size_t> counts = config.colocation_counts;
  if (counts.empty()) {
    for (std::size_t c = 1; c < machine.cores; ++c) counts.push_back(c);
  }
  for (std::size_t c : counts) {
    COLOC_CHECK_MSG(c + 1 <= machine.cores,
                    "co-location count exceeds available cores");
  }

  std::vector<std::size_t> pstates = config.pstate_indices;
  if (pstates.empty()) {
    for (std::size_t p = 0; p < machine.pstates.size(); ++p)
      pstates.push_back(p);
  }

  CampaignResult result;
  result.dataset = ml::Dataset(feature_names(), "colocExTime");

  fault::ResilientRunner runner(robustness.retry, robustness.bounds);

  std::unique_ptr<fault::CampaignCheckpoint> checkpoint;
  if (!robustness.checkpoint_path.empty()) {
    checkpoint = std::make_unique<fault::CampaignCheckpoint>(
        robustness.checkpoint_path, feature_names(), "colocExTime",
        robustness.checkpoint_every);
    if (robustness.resume) checkpoint->load();
  }

  // Baselines for every application that appears as target or co-runner.
  std::vector<sim::ApplicationSpec> all_apps = config.targets;
  for (const auto& co : config.coapps) {
    const bool present =
        std::any_of(all_apps.begin(), all_apps.end(),
                    [&co](const auto& a) { return a.name == co.name; });
    if (!present) all_apps.push_back(co);
  }
  {
    obs::ScopedSpan baseline_span("campaign/baselines", "core");
    result.baselines = collect_baselines(source, all_apps, &runner);
    metrics.baselines.inc(result.baselines.size());
  }

  // One progress unit per campaign cell (a dataset row).
  const std::size_t cells_per_target =
      (config.include_alone_rows ? 1 : 0) + config.coapps.size() * counts.size();
  obs::ProgressReporter progress(
      "campaign " + machine.name,
      pstates.size() * config.targets.size() * cells_per_target);

  CellCollector collector{result, runner, checkpoint.get(),
                          metrics.cell_seconds, progress};

  // An application whose baseline was quarantined has no feature vector;
  // every cell involving it is skipped and accounted as quarantined.
  auto baseline_missing = [&](const std::string& app, const std::string& tag) {
    if (result.baselines.count(app) != 0) return false;
    runner.note_skipped_cell(tag, "baseline quarantined for " + app);
    progress.tick();
    return true;
  };

  auto maybe_abort = [&] {
    if (robustness.abort_after_cells == 0) return;
    if (collector.measured_cells < robustness.abort_after_cells) return;
    if (checkpoint != nullptr) checkpoint->flush();
    throw coloc::runtime_error(
        "campaign aborted after " +
        std::to_string(collector.measured_cells) +
        " measured cells (abort_after_cells test hook)");
  };

  // The nested collection loops of Table V.
  for (std::size_t p : pstates) {
    for (const auto& target : config.targets) {
      if (config.include_alone_rows) {
        const std::string tag = CampaignResult::make_tag(target.name, "-",
                                                         0, p);
        if (!baseline_missing(target.name, tag)) {
          const BaselineProfile& target_baseline =
              result.baselines.at(target.name);
          const auto features = compute_features(target_baseline, {}, p);
          collector.collect(
              tag, features, target_baseline.time_at(p), metrics.cells_alone,
              [&](std::uint64_t attempt) {
                sim::RunMeasurement m = source.run_alone(target, p,
                                                         attempt + 1);
                check_confirmation(
                    tag, m,
                    source.run_alone(target, p,
                                     kConfirmRepOffset + attempt + 1));
                return m;
              });
          maybe_abort();
        }
      }

      for (const auto& coapp : config.coapps) {
        for (std::size_t count : counts) {
          const std::string tag = CampaignResult::make_tag(
              target.name, coapp.name, count, p);
          if (baseline_missing(target.name, tag) ||
              baseline_missing(coapp.name, tag)) {
            continue;
          }
          const BaselineProfile& target_baseline =
              result.baselines.at(target.name);
          const BaselineProfile& co_baseline =
              result.baselines.at(coapp.name);
          const std::vector<sim::ApplicationSpec> copies(count, coapp);
          const std::vector<const BaselineProfile*> co_profiles(
              count, &co_baseline);
          const auto features =
              compute_features(target_baseline, co_profiles, p);
          collector.collect(
              tag, features, target_baseline.time_at(p),
              metrics.cells_colocated, [&](std::uint64_t attempt) {
                sim::RunMeasurement m =
                    source.run_colocated(target, copies, p, attempt);
                check_confirmation(
                    tag, m,
                    source.run_colocated(target, copies, p,
                                         kConfirmRepOffset + attempt));
                return m;
              });
          maybe_abort();
        }
      }
    }
  }

  if (checkpoint != nullptr) checkpoint->flush();
  result.completeness = runner.report();
  return result;
}

}  // namespace coloc::core
