#include "core/campaign.hpp"

#include <algorithm>
#include <thread>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace coloc::core {

namespace {
// Resolved once; references stay valid for the process lifetime.
struct CampaignMetrics {
  obs::Counter& cells_alone;
  obs::Counter& cells_colocated;
  obs::Counter& baselines;
  obs::Counter& tasks_queued;
  obs::Counter& tasks_completed;
  obs::Histogram& cell_seconds;

  static CampaignMetrics& get() {
    auto& registry = obs::Registry::global();
    static CampaignMetrics metrics{
        registry.counter("campaign_cells_total", {{"phase", "alone"}}),
        registry.counter("campaign_cells_total", {{"phase", "colocated"}}),
        registry.counter("campaign_baselines_total"),
        registry.counter("orchestrator_tasks_queued_total",
                         {{"stage", "campaign"}}),
        registry.counter("orchestrator_tasks_completed_total",
                         {{"stage", "campaign"}}),
        registry.histogram("campaign_cell_seconds"),
    };
    return metrics;
  }
};
}  // namespace

CampaignConfig CampaignConfig::paper_defaults() {
  CampaignConfig config;
  config.targets = sim::benchmark_suite();
  for (const std::string& name : sim::training_coapp_names())
    config.coapps.push_back(sim::find_application(name));
  return config;
}

std::string CampaignResult::make_tag(const std::string& target,
                                     const std::string& coapp,
                                     std::size_t count, std::size_t pstate) {
  return target + "|" + coapp + "|x" + std::to_string(count) + "|p" +
         std::to_string(pstate);
}

std::string CampaignResult::tag_target(const std::string& tag) {
  const auto bar = tag.find('|');
  return bar == std::string::npos ? tag : tag.substr(0, bar);
}

namespace {
/// Every campaign cell gets a confirmation read at a disjoint repetition
/// seed, mirroring collect_baseline's guard: a corrupted primary read that
/// slips past the plausibility bounds is caught by run-to-run disagreement
/// instead of poisoning a dataset row. The recorded value is always the
/// primary read, so fault-free campaign numerics are unchanged — and
/// because the confirmation re-requests the same co-location
/// configuration, it is a guaranteed contention-solve cache hit, costing
/// one noise draw rather than a fixed-point solve.
constexpr std::uint64_t kConfirmRepOffset = std::uint64_t{1} << 20;

void check_confirmation(const std::string& tag,
                        const sim::RunMeasurement& primary,
                        const sim::RunMeasurement& confirm) {
  const double ratio = primary.execution_time_s / confirm.execution_time_s;
  if (!(ratio > 1.0 / 3.0 && ratio < 3.0)) {
    throw MeasurementError(
        ErrorClass::kCorruptedData,
        "cell disagrees with its confirmation read: " + tag);
  }
}

/// One cell of the Table V sweep, fully resolved at enumeration time so a
/// worker thread can measure it without touching any shared state. The
/// pointers reference CampaignConfig vectors, the baseline library, and
/// the checkpoint's node-stable map — all immutable (or append-only) for
/// the duration of the sweep.
struct CellPlan {
  std::string tag;
  const sim::ApplicationSpec* target = nullptr;
  const sim::ApplicationSpec* coapp = nullptr;  // nullptr = run-alone cell
  std::size_t count = 0;
  std::size_t pstate = 0;
  std::vector<double> features;      // empty when skipped or resumed
  double reference_time_s = 0.0;
  bool skipped = false;              // baseline quarantined; no measurement
  std::string skip_reason;
  const fault::CheckpointRow* resumed = nullptr;  // replay, don't measure

  bool needs_measure() const { return !skipped && resumed == nullptr; }
};

/// Runs one planned cell's retry loop. Pure in (plan, attempt): the
/// repetition seeds and confirmation reads are functions of the cell
/// identity alone, so this is safe — and bit-reproducible — from any
/// worker thread in any order.
fault::CellOutcome measure_plan(sim::MeasurementSource& source,
                                fault::ResilientRunner& runner,
                                const CellPlan& plan) {
  if (plan.coapp == nullptr) {
    const sim::ApplicationSpec& target = *plan.target;
    const std::size_t p = plan.pstate;
    return runner.measure_outcome(
        plan.tag, plan.reference_time_s, [&](std::uint64_t attempt) {
          sim::RunMeasurement m = source.run_alone(target, p, attempt + 1);
          check_confirmation(
              plan.tag, m,
              source.run_alone(target, p, kConfirmRepOffset + attempt + 1));
          return m;
        });
  }
  const sim::ApplicationSpec& target = *plan.target;
  const std::size_t p = plan.pstate;
  const std::vector<sim::ApplicationSpec> copies(plan.count, *plan.coapp);
  return runner.measure_outcome(
      plan.tag, plan.reference_time_s, [&](std::uint64_t attempt) {
        sim::RunMeasurement m = source.run_colocated(target, copies, p,
                                                     attempt);
        check_confirmation(
            plan.tag, m,
            source.run_colocated(target, copies, p,
                                 kConfirmRepOffset + attempt));
        return m;
      });
}
}  // namespace

CampaignResult run_campaign(sim::MeasurementSource& source,
                            const CampaignConfig& config,
                            const CampaignRobustness& robustness) {
  COLOC_CHECK_MSG(!config.targets.empty(), "campaign needs target apps");
  COLOC_CHECK_MSG(!config.coapps.empty(), "campaign needs co-runner apps");

  obs::ScopedSpan campaign_span("campaign", "core");
  obs::StageTimer stage_timer("campaign");
  CampaignMetrics& metrics = CampaignMetrics::get();

  const sim::MachineConfig& machine = source.machine();

  std::vector<std::size_t> counts = config.colocation_counts;
  if (counts.empty()) {
    for (std::size_t c = 1; c < machine.cores; ++c) counts.push_back(c);
  }
  for (std::size_t c : counts) {
    COLOC_CHECK_MSG(c + 1 <= machine.cores,
                    "co-location count exceeds available cores");
  }

  std::vector<std::size_t> pstates = config.pstate_indices;
  if (pstates.empty()) {
    for (std::size_t p = 0; p < machine.pstates.size(); ++p)
      pstates.push_back(p);
  }

  CampaignResult result;
  result.dataset = ml::Dataset(feature_names(), "colocExTime");

  const std::size_t jobs = config.jobs != 0 ? config.jobs : configured_jobs();
  fault::ResilientRunner runner(robustness.retry, robustness.bounds,
                                std::max<std::size_t>(2, jobs));

  std::unique_ptr<fault::CampaignCheckpoint> checkpoint;
  if (!robustness.checkpoint_path.empty()) {
    checkpoint = std::make_unique<fault::CampaignCheckpoint>(
        robustness.checkpoint_path, feature_names(), "colocExTime",
        robustness.checkpoint_every);
    if (robustness.resume) checkpoint->load();
  }

  // Baselines for every application that appears as target or co-runner.
  std::vector<sim::ApplicationSpec> all_apps = config.targets;
  for (const auto& co : config.coapps) {
    const bool present =
        std::any_of(all_apps.begin(), all_apps.end(),
                    [&co](const auto& a) { return a.name == co.name; });
    if (!present) all_apps.push_back(co);
  }
  {
    obs::ScopedSpan baseline_span("campaign/baselines", "core");
    result.baselines = collect_baselines(source, all_apps, &runner);
    metrics.baselines.inc(result.baselines.size());
  }

  // --- Enumerate: flatten the nested Table V loops into a task list in
  // exact sweep order. Skip/resume decisions and feature vectors are
  // resolved here, on the driver thread, so each remaining cell is a
  // self-contained measurement task.
  auto resolve = [&](CellPlan& plan) {
    const std::string* missing = nullptr;
    if (result.baselines.count(plan.target->name) == 0) {
      missing = &plan.target->name;
    } else if (plan.coapp != nullptr &&
               result.baselines.count(plan.coapp->name) == 0) {
      missing = &plan.coapp->name;
    }
    if (missing != nullptr) {
      // An application whose baseline was quarantined has no feature
      // vector; every cell involving it is skipped and accounted.
      plan.skipped = true;
      plan.skip_reason = "baseline quarantined for " + *missing;
      return;
    }
    if (checkpoint != nullptr) {
      plan.resumed = checkpoint->find(plan.tag);
      if (plan.resumed != nullptr) return;  // replay verbatim at commit
    }
    const BaselineProfile& target_baseline =
        result.baselines.at(plan.target->name);
    std::vector<const BaselineProfile*> co_profiles;
    if (plan.coapp != nullptr) {
      co_profiles.assign(plan.count, &result.baselines.at(plan.coapp->name));
    }
    const auto features =
        compute_features(target_baseline, co_profiles, plan.pstate);
    plan.features.assign(features.begin(), features.end());
    plan.reference_time_s = target_baseline.time_at(plan.pstate);
  };

  const std::size_t cells_per_target =
      (config.include_alone_rows ? 1 : 0) + config.coapps.size() * counts.size();
  std::vector<CellPlan> plans;
  plans.reserve(pstates.size() * config.targets.size() * cells_per_target);
  for (std::size_t p : pstates) {
    for (const auto& target : config.targets) {
      if (config.include_alone_rows) {
        CellPlan plan;
        plan.tag = CampaignResult::make_tag(target.name, "-", 0, p);
        plan.target = &target;
        plan.pstate = p;
        resolve(plan);
        plans.push_back(std::move(plan));
      }
      for (const auto& coapp : config.coapps) {
        for (std::size_t count : counts) {
          CellPlan plan;
          plan.tag = CampaignResult::make_tag(target.name, coapp.name, count,
                                              p);
          plan.target = &target;
          plan.coapp = &coapp;
          plan.count = count;
          plan.pstate = p;
          resolve(plan);
          plans.push_back(std::move(plan));
        }
      }
    }
  }

  // One progress unit per campaign cell (a dataset row).
  obs::ProgressReporter progress("campaign " + machine.name, plans.size());

  // --- Fan out + sequenced commit. Workers fill outcomes[] in whatever
  // order the scheduler picks; the driver commits strictly in plan order,
  // so every output (dataset, checkpoint, completeness report) is
  // byte-identical to the serial sweep. The dispatch window bounds
  // speculative look-ahead past the commit cursor, keeping abort paths
  // (and quarantine storms) cheap to drain.
  const bool parallel_run =
      jobs > 1 && plans.size() > 1 && !on_worker_thread();

  // Cells are coalesced into contiguous chunks so each pool task amortizes
  // its submit/retire overhead over many sweep cells. The chunk size is a
  // pure function of the plan count — NOT of jobs — so the work
  // decomposition (and with it every stride-sampled metric) is identical
  // at any --jobs value; outputs stay bit-identical because the commit
  // seam below is untouched.
  const std::size_t chunk_cells = parallel_run
      ? std::clamp<std::size_t>(plans.size() / 64, 1, 64)
      : 1;
  const std::size_t num_chunks =
      (plans.size() + chunk_cells - 1) / chunk_cells;

  // Effective workers are capped at the chunk count and the machine: more
  // threads than coalesced chunks (or cores) never run anything — they
  // just add wake-up and context-switch churn, which is exactly the
  // jobs=8-on-a-small-sweep cliff. The cap is invisible to outputs because
  // the decomposition above and the commit seam below don't consult it.
  const std::size_t pool_workers =
      parallel_run
          ? std::min({jobs, num_chunks,
                      std::max<std::size_t>(
                          1, std::thread::hardware_concurrency())})
          : 1;
  std::unique_ptr<ThreadPool> workers;
  if (parallel_run) {
    workers = std::make_unique<ThreadPool>(pool_workers);
    // Coalesced cells are sub-millisecond; per-task span/histogram
    // bookkeeping at that grain costs more than the measurements.
    workers->set_instrument_stride(8);
  }
  const std::size_t window_chunks = parallel_run ? pool_workers * 2 : 0;

  // Per-cell spans and timing are stride-sampled on big sweeps (same
  // stride serial and parallel, so published metrics agree): one observed
  // cell per stride keeps trace and histogram representative without a
  // per-cell clock/event flood.
  const std::size_t span_stride = std::max<std::size_t>(1, plans.size() / 512);

  std::vector<std::optional<fault::CellOutcome>> outcomes(plans.size());
  std::vector<double> measure_seconds(plans.size(), 0.0);
  std::vector<std::future<void>> inflight(parallel_run ? num_chunks : 0);
  std::size_t dispatched_chunks = 0;

  auto measure_into = [&](std::size_t d) {
    if (d % span_stride == 0) {
      const auto start = std::chrono::steady_clock::now();
      outcomes[d] = measure_plan(source, runner, plans[d]);
      measure_seconds[d] = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    } else {
      outcomes[d] = measure_plan(source, runner, plans[d]);
    }
  };

  auto dispatch_chunks_up_to = [&](std::size_t bound) {
    bound = std::min(bound, num_chunks);
    for (; dispatched_chunks < bound; ++dispatched_chunks) {
      const std::size_t begin = dispatched_chunks * chunk_cells;
      const std::size_t end = std::min(begin + chunk_cells, plans.size());
      std::size_t measured = 0;
      for (std::size_t d = begin; d < end; ++d) {
        if (plans[d].needs_measure()) ++measured;
      }
      if (measured == 0) continue;
      metrics.tasks_queued.inc(measured);
      inflight[dispatched_chunks] = workers->submit([&, begin, end] {
        for (std::size_t d = begin; d < end; ++d) {
          if (plans[d].needs_measure()) measure_into(d);
        }
      });
    }
  };

  std::size_t measured_cells = 0;
  auto maybe_abort = [&] {
    if (robustness.abort_after_cells == 0) return;
    if (measured_cells < robustness.abort_after_cells) return;
    if (checkpoint != nullptr) checkpoint->flush();
    throw coloc::runtime_error(
        "campaign aborted after " + std::to_string(measured_cells) +
        " measured cells (abort_after_cells test hook)");
  };

  try {
    for (std::size_t i = 0; i < plans.size(); ++i) {
      if (parallel_run) {
        dispatch_chunks_up_to(i / chunk_cells + 1 + window_chunks);
      }
      const CellPlan& plan = plans[i];
      std::optional<obs::ScopedSpan> cell_span;
      if (i % span_stride == 0) cell_span.emplace("campaign/cell", "core");

      if (plan.skipped) {
        runner.note_skipped_cell(plan.tag, plan.skip_reason);
        progress.tick();
        continue;
      }
      if (plan.resumed != nullptr) {
        // Completed in a previous run: replay the stored row verbatim.
        result.dataset.add_row(plan.resumed->features, plan.resumed->target,
                               plan.tag);
        ++result.total_runs;
        runner.note_resumed_cell();
        progress.tick();
        maybe_abort();
        continue;
      }

      fault::CellOutcome outcome;
      if (parallel_run) {
        // First committed cell of a chunk collects the whole chunk; later
        // cells find the future already consumed.
        std::future<void>& chunk_future = inflight[i / chunk_cells];
        if (chunk_future.valid()) {
          chunk_future.get();  // rethrows worker-side orchestration failures
        }
      } else {
        metrics.tasks_queued.inc();
        measure_into(i);
      }
      outcome = std::move(*outcomes[i]);
      outcomes[i].reset();
      metrics.tasks_completed.inc();

      const auto measurement =
          runner.commit_outcome(plan.tag, std::move(outcome));
      progress.tick();
      if (measurement) {
        result.dataset.add_row(plan.features, measurement->execution_time_s,
                               plan.tag);
        ++result.total_runs;
        ++measured_cells;
        if (checkpoint != nullptr) {
          checkpoint->record(plan.tag, plan.features,
                             measurement->execution_time_s);
        }
        (plan.coapp == nullptr ? metrics.cells_alone : metrics.cells_colocated)
            .inc();
        if (i % span_stride == 0) {
          metrics.cell_seconds.observe(measure_seconds[i]);
        }
      }
      maybe_abort();
    }
  } catch (...) {
    // Drain in-flight workers before unwinding: their closures reference
    // plans/outcomes on this frame.
    for (auto& f : inflight) {
      if (f.valid()) f.wait();
    }
    throw;
  }

  if (checkpoint != nullptr) checkpoint->flush();

  // Publish this stage's worker accounting while the pool is still ours:
  // per-stage gauges (rather than cumulative global ones) keep idle time
  // from other stages out of the campaign's attribution.
  PoolStats pool_stats;
  if (workers != nullptr) {
    workers->shutdown();
    pool_stats = workers->stats();
  } else {
    pool_stats.workers = 1;  // the driver thread measured inline
  }
  export_stage_pool_gauges("campaign", pool_stats);

  result.completeness = runner.report();
  return result;
}

}  // namespace coloc::core
