#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace coloc::core {

namespace {
// Resolved once; references stay valid for the process lifetime.
struct CampaignMetrics {
  obs::Counter& cells_alone;
  obs::Counter& cells_colocated;
  obs::Counter& baselines;
  obs::Histogram& cell_seconds;

  static CampaignMetrics& get() {
    auto& registry = obs::Registry::global();
    static CampaignMetrics metrics{
        registry.counter("campaign_cells_total", {{"phase", "alone"}}),
        registry.counter("campaign_cells_total", {{"phase", "colocated"}}),
        registry.counter("campaign_baselines_total"),
        registry.histogram("campaign_cell_seconds"),
    };
    return metrics;
  }
};
}  // namespace

CampaignConfig CampaignConfig::paper_defaults() {
  CampaignConfig config;
  config.targets = sim::benchmark_suite();
  for (const std::string& name : sim::training_coapp_names())
    config.coapps.push_back(sim::find_application(name));
  return config;
}

std::string CampaignResult::make_tag(const std::string& target,
                                     const std::string& coapp,
                                     std::size_t count, std::size_t pstate) {
  return target + "|" + coapp + "|x" + std::to_string(count) + "|p" +
         std::to_string(pstate);
}

std::string CampaignResult::tag_target(const std::string& tag) {
  const auto bar = tag.find('|');
  return bar == std::string::npos ? tag : tag.substr(0, bar);
}

CampaignResult run_campaign(sim::Simulator& simulator,
                            const CampaignConfig& config) {
  COLOC_CHECK_MSG(!config.targets.empty(), "campaign needs target apps");
  COLOC_CHECK_MSG(!config.coapps.empty(), "campaign needs co-runner apps");

  obs::ScopedSpan campaign_span("campaign", "core");
  CampaignMetrics& metrics = CampaignMetrics::get();

  const sim::MachineConfig& machine = simulator.machine();

  std::vector<std::size_t> counts = config.colocation_counts;
  if (counts.empty()) {
    for (std::size_t c = 1; c < machine.cores; ++c) counts.push_back(c);
  }
  for (std::size_t c : counts) {
    COLOC_CHECK_MSG(c + 1 <= machine.cores,
                    "co-location count exceeds available cores");
  }

  std::vector<std::size_t> pstates = config.pstate_indices;
  if (pstates.empty()) {
    for (std::size_t p = 0; p < machine.pstates.size(); ++p)
      pstates.push_back(p);
  }

  CampaignResult result;
  result.dataset = ml::Dataset(feature_names(), "colocExTime");

  // Baselines for every application that appears as target or co-runner.
  std::vector<sim::ApplicationSpec> all_apps = config.targets;
  for (const auto& co : config.coapps) {
    const bool present =
        std::any_of(all_apps.begin(), all_apps.end(),
                    [&co](const auto& a) { return a.name == co.name; });
    if (!present) all_apps.push_back(co);
  }
  {
    obs::ScopedSpan baseline_span("campaign/baselines", "core");
    result.baselines = collect_baselines(simulator, all_apps);
    metrics.baselines.inc(all_apps.size());
  }

  // One progress unit per campaign cell (a dataset row).
  const std::size_t cells_per_target =
      (config.include_alone_rows ? 1 : 0) + config.coapps.size() * counts.size();
  obs::ProgressReporter progress(
      "campaign " + machine.name,
      pstates.size() * config.targets.size() * cells_per_target);

  // The nested collection loops of Table V.
  for (std::size_t p : pstates) {
    for (const auto& target : config.targets) {
      const BaselineProfile& target_baseline =
          result.baselines.at(target.name);

      if (config.include_alone_rows) {
        obs::ScopedSpan cell_span("campaign/cell", "core");
        const auto cell_start = std::chrono::steady_clock::now();
        const auto features = compute_features(target_baseline, {}, p);
        const sim::RunMeasurement alone = simulator.run_alone(target, p, 1);
        result.dataset.add_row(
            features, alone.execution_time_s,
            CampaignResult::make_tag(target.name, "-", 0, p));
        ++result.total_runs;
        metrics.cells_alone.inc();
        metrics.cell_seconds.observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          cell_start)
                .count());
        progress.tick();
      }

      for (const auto& coapp : config.coapps) {
        const BaselineProfile& co_baseline = result.baselines.at(coapp.name);
        for (std::size_t count : counts) {
          obs::ScopedSpan cell_span("campaign/cell", "core");
          const auto cell_start = std::chrono::steady_clock::now();
          const std::vector<sim::ApplicationSpec> copies(count, coapp);
          const sim::RunMeasurement m =
              simulator.run_colocated(target, copies, p);

          const std::vector<const BaselineProfile*> co_profiles(
              count, &co_baseline);
          const auto features =
              compute_features(target_baseline, co_profiles, p);
          result.dataset.add_row(
              features, m.execution_time_s,
              CampaignResult::make_tag(target.name, coapp.name, count, p));
          ++result.total_runs;
          metrics.cells_colocated.inc();
          metrics.cell_seconds.observe(
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - cell_start)
                  .count());
          progress.tick();
        }
      }
    }
  }
  return result;
}

}  // namespace coloc::core
