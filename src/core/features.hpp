// Model features from Table I of the paper.
//
// Every feature derives from a *single* baseline (run-alone) profiling pass
// per application — the paper's key practical point: after one profiling
// run per app, co-location slowdown is predicted without ever monitoring
// the co-located execution itself.
//
//   baseExTime   baseline execution time of the target at the P-state
//   numCoApp     number of co-located applications
//   coAppMem     sum of co-app memory intensities
//   targetMem    target memory intensity
//   coAppCM/CA   sum of co-app LLC miss/access ratios
//   coAppCA/INS  sum of co-app LLC access/instruction ratios
//   targetCM/CA  target LLC miss/access ratio
//   targetCA/INS target LLC access/instruction ratio
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "fault/resilient_runner.hpp"
#include "sim/execution.hpp"

namespace coloc::core {

enum class FeatureId : std::size_t {
  kBaseExTime = 0,
  kNumCoApp = 1,
  kCoAppMem = 2,
  kTargetMem = 3,
  kCoAppCmCa = 4,
  kCoAppCaIns = 5,
  kTargetCmCa = 6,
  kTargetCaIns = 7,
};

inline constexpr std::size_t kNumFeatures = 8;

/// Canonical feature names (used as dataset column headers).
const std::vector<std::string>& feature_names();
std::string to_string(FeatureId id);

/// One application's baseline characterization: execution time at every
/// P-state plus the three counter-derived ratios, measured alone.
struct BaselineProfile {
  std::string app_name;
  /// Baseline execution time per P-state index (seconds).
  std::vector<double> execution_time_s;
  double memory_intensity = 0.0;
  double cm_per_ca = 0.0;
  double ca_per_ins = 0.0;

  double time_at(std::size_t pstate_index) const;
};

/// Runs the paper's "initial baseline tests": the app alone at each
/// P-state, recording times and counter ratios (ratios from the highest
/// P-state run; they are frequency-invariant in both the simulator and on
/// real hardware to first order).
///
/// With a ResilientRunner, every per-P-state measurement runs under that
/// runner's deadline/retry/validation policy; if any P-state exhausts its
/// retry budget the whole profile is unusable and MeasurementError
/// (kPermanent) is thrown — collect_baselines() turns that into a skipped
/// application instead of an aborted pass.
BaselineProfile collect_baseline(sim::MeasurementSource& source,
                                 const sim::ApplicationSpec& app,
                                 fault::ResilientRunner* runner = nullptr);

/// Baselines for a whole application set, keyed by name. With a runner,
/// applications whose baseline is quarantined are left out of the library
/// (the campaign then skips their cells) rather than failing the pass.
using BaselineLibrary = std::map<std::string, BaselineProfile>;
BaselineLibrary collect_baselines(
    sim::MeasurementSource& source,
    const std::vector<sim::ApplicationSpec>& apps,
    fault::ResilientRunner* runner = nullptr);

/// Assembles the 8-entry Table I feature vector for a co-location scenario:
/// `target` co-located with the profiles in `coapps` (one entry per
/// co-located instance; repeat an entry for multiple copies) at the given
/// P-state.
std::array<double, kNumFeatures> compute_features(
    const BaselineProfile& target,
    const std::vector<const BaselineProfile*>& coapps,
    std::size_t pstate_index);

}  // namespace coloc::core
