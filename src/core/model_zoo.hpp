// The paper's twelve models: {linear, neural network} x {sets A-F}
// (Section V-A). This module builds ml::ModelFactory instances with the
// paper's hyperparameter conventions, including the 10-20 hidden-unit rule
// that scales network width with the feature-set size.
#pragma once

#include <cstdint>
#include <string>

#include "core/feature_sets.hpp"
#include "ml/linear_model.hpp"
#include "ml/mlp.hpp"
#include "ml/validation.hpp"

namespace coloc::core {

enum class ModelTechnique { kLinear, kNeuralNetwork };

inline constexpr ModelTechnique kAllTechniques[] = {
    ModelTechnique::kLinear, ModelTechnique::kNeuralNetwork};

std::string to_string(ModelTechnique technique);

/// One of the twelve model identities.
struct ModelId {
  ModelTechnique technique = ModelTechnique::kLinear;
  FeatureSet feature_set = FeatureSet::kA;

  std::string name() const {
    return to_string(technique) + "-" + to_string(feature_set);
  }
};

struct ModelZooOptions {
  ml::LinearModelOptions linear;
  ml::MlpOptions mlp;  // hidden_units is overridden by the 10-20 rule
  /// Disable the width rule and use mlp.hidden_units verbatim.
  bool fixed_hidden_units = false;
};

/// Paper rule: networks use 10-20 nodes "depending on the model feature
/// set". We interpolate linearly between 10 (set A, one feature) and
/// 20 (set F, eight features).
std::size_t hidden_units_for(FeatureSet set);

/// Builds the training factory for one model identity. The factory is
/// self-contained (safe to call concurrently from validation partitions);
/// `seed_salt` decorrelates NN initializations across identities.
ml::ModelFactory make_model_factory(const ModelId& id,
                                    const ModelZooOptions& options = {},
                                    std::uint64_t seed_salt = 0);

}  // namespace coloc::core
