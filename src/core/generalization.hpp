// Generalization evaluation beyond the training co-runner set.
//
// Section IV-B3 claims the campaign's training data is "designed to be
// able to both predict between the training data's gaps in the sample
// space, and extend beyond the set of four co-location applications ...
// and be able to make predictions about applications that it has not seen
// previously." The paper never quantifies that claim; this module does:
//
//   - unseen-co-runner scenarios: the target runs next to copies of an
//     application that was NOT one of the four training co-runners;
//   - heterogeneous mixes: co-runner groups drawn from several different
//     applications at once (training only ever used homogeneous groups).
//
// Both stress exactly the additive structure of the Table I features
// (co-app features are sums over co-runners), so they measure whether the
// trained models learned that structure or just memorized the sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/methodology.hpp"
#include "sim/execution.hpp"

namespace coloc::core {

/// One out-of-sample co-location scenario.
struct GeneralizationScenario {
  std::string target;
  std::vector<std::string> coapps;  // one entry per co-located instance
  std::size_t pstate_index = 0;
};

struct GeneralizationOptions {
  /// Number of random scenarios per category.
  std::size_t scenarios = 200;
  std::uint64_t seed = 31;
  /// Repetition base for fresh measurement noise (offset from campaign).
  std::uint64_t repetition_offset = 1000;
};

struct GeneralizationReport {
  /// Mean |error|% over scenarios whose co-runners were in the training
  /// set (sanity reference — should match held-out campaign accuracy).
  double seen_homogeneous_mpe = 0.0;
  /// Scenarios using a single unseen co-runner application.
  double unseen_homogeneous_mpe = 0.0;
  /// Scenarios mixing 2+ distinct co-runner applications (seen or not).
  double heterogeneous_mpe = 0.0;
  std::size_t scenarios_per_category = 0;

  /// Per-scenario records for deeper analysis.
  struct Record {
    GeneralizationScenario scenario;
    double predicted_s = 0.0;
    double actual_s = 0.0;
    double percent_error = 0.0;  // signed
  };
  std::vector<Record> seen_records;
  std::vector<Record> unseen_records;
  std::vector<Record> mixed_records;
};

/// Generates the three scenario categories for a machine.
/// `training_coapps` are the campaign's co-runner names; everything else
/// in `all_apps` counts as unseen.
std::vector<GeneralizationScenario> make_seen_scenarios(
    const sim::MachineConfig& machine,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const std::vector<std::string>& training_coapps,
    const GeneralizationOptions& options);

std::vector<GeneralizationScenario> make_unseen_scenarios(
    const sim::MachineConfig& machine,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const std::vector<std::string>& training_coapps,
    const GeneralizationOptions& options);

std::vector<GeneralizationScenario> make_heterogeneous_scenarios(
    const sim::MachineConfig& machine,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const GeneralizationOptions& options);

/// Measures each scenario in the simulator, predicts it with the trained
/// model, and aggregates the three categories.
GeneralizationReport evaluate_generalization(
    sim::Simulator& simulator, const ColocationPredictor& predictor,
    const BaselineLibrary& baselines,
    const std::vector<sim::ApplicationSpec>& all_apps,
    const std::vector<std::string>& training_coapps,
    const GeneralizationOptions& options = {});

}  // namespace coloc::core
