#include "core/model_zoo.hpp"

#include <memory>

namespace coloc::core {

std::string to_string(ModelTechnique technique) {
  return technique == ModelTechnique::kLinear ? "linear" : "nn";
}

std::size_t hidden_units_for(FeatureSet set) {
  const std::size_t features = feature_set_columns(set).size();
  // 1 feature -> 10 units, 8 features -> 20 units, linear in between.
  return 10 + (features - 1) * 10 / 7;
}

ml::ModelFactory make_model_factory(const ModelId& id,
                                    const ModelZooOptions& options,
                                    std::uint64_t seed_salt) {
  if (id.technique == ModelTechnique::kLinear) {
    const ml::LinearModelOptions linear = options.linear;
    return [linear](const linalg::Matrix& x,
                    std::span<const double> y) -> ml::RegressorPtr {
      return std::make_unique<ml::LinearModel>(
          ml::LinearModel::fit(x, y, linear));
    };
  }

  ml::MlpOptions mlp = options.mlp;
  if (!options.fixed_hidden_units) {
    mlp.hidden_units = hidden_units_for(id.feature_set);
  }
  mlp.seed ^= seed_salt * 0x9e3779b97f4a7c15ULL +
              static_cast<std::uint64_t>(id.feature_set) * 1315423911ULL;
  return [mlp](const linalg::Matrix& x,
               std::span<const double> y) -> ml::RegressorPtr {
    return std::make_unique<ml::MlpRegressor>(ml::MlpRegressor::fit(x, y, mlp));
  };
}

}  // namespace coloc::core
