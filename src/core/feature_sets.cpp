#include "core/feature_sets.hpp"

#include <cctype>

#include "common/error.hpp"

namespace coloc::core {

std::string to_string(FeatureSet set) {
  switch (set) {
    case FeatureSet::kA: return "A";
    case FeatureSet::kB: return "B";
    case FeatureSet::kC: return "C";
    case FeatureSet::kD: return "D";
    case FeatureSet::kE: return "E";
    case FeatureSet::kF: return "F";
  }
  return "?";
}

const std::vector<std::size_t>& feature_set_columns(FeatureSet set) {
  static const std::vector<std::size_t> kA = {0};
  static const std::vector<std::size_t> kB = {0, 1};
  static const std::vector<std::size_t> kC = {0, 1, 2};
  static const std::vector<std::size_t> kD = {0, 1, 2, 3};
  static const std::vector<std::size_t> kE = {0, 1, 2, 3, 4, 5};
  static const std::vector<std::size_t> kF = {0, 1, 2, 3, 4, 5, 6, 7};
  switch (set) {
    case FeatureSet::kA: return kA;
    case FeatureSet::kB: return kB;
    case FeatureSet::kC: return kC;
    case FeatureSet::kD: return kD;
    case FeatureSet::kE: return kE;
    case FeatureSet::kF: return kF;
  }
  return kF;
}

std::vector<FeatureId> feature_set_ids(FeatureSet set) {
  std::vector<FeatureId> ids;
  for (std::size_t c : feature_set_columns(set))
    ids.push_back(static_cast<FeatureId>(c));
  return ids;
}

FeatureSet parse_feature_set(const std::string& name) {
  COLOC_CHECK_MSG(name.size() == 1, "feature set must be a single letter A-F");
  switch (std::toupper(static_cast<unsigned char>(name[0]))) {
    case 'A': return FeatureSet::kA;
    case 'B': return FeatureSet::kB;
    case 'C': return FeatureSet::kC;
    case 'D': return FeatureSet::kD;
    case 'E': return FeatureSet::kE;
    case 'F': return FeatureSet::kF;
    default:
      throw coloc::invalid_argument_error("unknown feature set: " + name);
  }
}

}  // namespace coloc::core
