#include "core/supervisor.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "store/digest.hpp"

namespace coloc::core {

namespace {

constexpr const char* kJournalHeader = "coloc-journal v1";

volatile std::sig_atomic_t g_stop_requested = 0;

void stop_signal_handler(int /*signum*/) { g_stop_requested = 1; }

obs::Counter& supervisor_counter(const char* name) {
  return obs::Registry::global().counter(name);
}

/// Journal fields are space-separated; paths with whitespace would make
/// records ambiguous, so refuse them up front.
void check_journal_token(const std::string& token, const char* what) {
  COLOC_CHECK_MSG(!token.empty(), std::string(what) + " must not be empty");
  for (char c : token) {
    COLOC_CHECK_MSG(c != ' ' && c != '\n' && c != '\r' && c != '\t',
                    std::string(what) + " must not contain whitespace: " +
                        token);
  }
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream is(line);
  std::string field;
  while (is >> field) fields.push_back(field);
  return fields;
}

}  // namespace

const JournalStage* JournalState::find(const std::string& stage) const {
  for (const JournalStage& s : completed) {
    if (s.name == stage) return &s;
  }
  return nullptr;
}

JournalState StageJournal::parse(const std::string& text) {
  JournalState state;
  std::size_t pos = 0;
  bool saw_header = false;
  JournalStage open_stage;  // artifacts accumulate between start and done
  bool stage_open = false;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail: drop the partial line
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kJournalHeader) {
        throw coloc::data_error("not a coloc stage journal");
      }
      saw_header = true;
      continue;
    }
    const std::vector<std::string> fields = split_fields(line);
    if (fields.empty()) continue;
    if (fields[0] == "start" && fields.size() == 2) {
      open_stage = JournalStage{fields[1], {}};
      stage_open = true;
      state.clean_stop = false;
    } else if (fields[0] == "artifact" && fields.size() == 5) {
      if (stage_open && fields[1] == open_stage.name) {
        JournalArtifact a;
        a.path = fields[2];
        a.bytes = std::strtoull(fields[3].c_str(), nullptr, 10);
        a.digest = fields[4];
        open_stage.artifacts.push_back(std::move(a));
      }
    } else if (fields[0] == "done" && fields.size() == 2) {
      if (stage_open && fields[1] == open_stage.name) {
        state.completed.push_back(std::move(open_stage));
        stage_open = false;
      }
    } else if (fields[0] == "stop" && fields.size() == 1) {
      state.clean_stop = true;
    }
    // Unknown or malformed records are skipped, not fatal: the journal
    // may carry a torn line in the middle only if a concurrent writer
    // misbehaved, and the conservative response is to ignore the record
    // (its stage then simply re-runs).
  }
  return state;
}

StageJournal::StageJournal(store::FileOps& files, std::string path,
                           bool resume)
    : files_(files), path_(std::move(path)) {
  COLOC_CHECK_MSG(!path_.empty(), "stage journal needs a path");
  if (resume) {
    if (const std::optional<std::string> raw = files_.read_if_exists(path_)) {
      state_ = parse(*raw);
    }
    // A resumed run is live again: drop any clean-stop marker.
    state_.clean_stop = false;
  }
  // Compact: rewrite only the surviving records so the on-disk file has
  // no torn tail and later appends extend a verified prefix.
  rewrite();
}

void StageJournal::rewrite() {
  std::ostringstream os;
  os << kJournalHeader << '\n';
  for (const JournalStage& s : state_.completed) {
    os << "start " << s.name << '\n';
    for (const JournalArtifact& a : s.artifacts) {
      os << "artifact " << s.name << ' ' << a.path << ' ' << a.bytes << ' '
         << a.digest << '\n';
    }
    os << "done " << s.name << '\n';
  }
  if (state_.clean_stop) os << "stop\n";
  files_.write_atomic(path_, os.str());
}

void StageJournal::append(const std::string& line) {
  files_.append_durable(path_, line + "\n");
}

void StageJournal::record_start(const std::string& stage) {
  check_journal_token(stage, "stage name");
  append("start " + stage);
}

void StageJournal::record_done(const std::string& stage,
                               const std::vector<JournalArtifact>& artifacts) {
  check_journal_token(stage, "stage name");
  for (const JournalArtifact& a : artifacts) {
    check_journal_token(a.path, "artifact path");
    append("artifact " + stage + " " + a.path + " " +
           std::to_string(a.bytes) + " " + a.digest);
  }
  append("done " + stage);
  state_.completed.push_back(JournalStage{stage, artifacts});
}

void StageJournal::record_stop() {
  append("stop");
  state_.clean_stop = true;
}

void StageJournal::reset_from(const std::string& stage) {
  const auto it = std::find_if(
      state_.completed.begin(), state_.completed.end(),
      [&](const JournalStage& s) { return s.name == stage; });
  if (it == state_.completed.end()) return;
  state_.completed.erase(it, state_.completed.end());
  rewrite();
}

const char* to_string(StageOutcome outcome) {
  switch (outcome) {
    case StageOutcome::kRan: return "ran";
    case StageOutcome::kSkippedValid: return "skipped";
    case StageOutcome::kStopped: return "stopped";
  }
  return "unknown";
}

PipelineSupervisor::PipelineSupervisor(Options options)
    : files_(options.files != nullptr ? *options.files
                                      : store::FileOps::real()),
      journal_(store::FileOps::real(), options.journal_path, options.resume),
      resume_(options.resume), handle_signals_(options.handle_signals) {
  if (handle_signals_) {
    old_term_ = std::signal(SIGTERM, stop_signal_handler);
    old_int_ = std::signal(SIGINT, stop_signal_handler);
  }
}

PipelineSupervisor::~PipelineSupervisor() {
  if (handle_signals_) {
    std::signal(SIGTERM, old_term_ != SIG_ERR ? old_term_ : SIG_DFL);
    std::signal(SIGINT, old_int_ != SIG_ERR ? old_int_ : SIG_DFL);
  }
}

bool PipelineSupervisor::stop_requested() const {
  return g_stop_requested != 0;
}

void PipelineSupervisor::request_stop() { g_stop_requested = 1; }

void PipelineSupervisor::clear_stop_request() { g_stop_requested = 0; }

StageOutcome PipelineSupervisor::run_stage(
    const std::string& stage, const std::vector<std::string>& artifacts,
    const std::function<void()>& body) {
  if (stop_requested()) {
    if (!stopped_) {
      journal_.record_stop();
      stopped_ = true;
      supervisor_counter("supervisor_clean_stops_total").inc();
      COLOC_LOG_INFO << "stop requested; pipeline halting before stage '"
                     << stage << "' (resume with --resume)";
    }
    return StageOutcome::kStopped;
  }

  if (const JournalStage* record = journal_.state().find(stage)) {
    bool valid = resume_;
    std::string why;
    for (const JournalArtifact& a : record->artifacts) {
      if (!valid) break;
      const std::optional<std::string> bytes = files_.read_if_exists(a.path);
      if (!bytes.has_value()) {
        valid = false;
        why = "artifact missing: " + a.path;
      } else if (bytes->size() != a.bytes ||
                 store::digest_hex(*bytes) != a.digest) {
        valid = false;
        why = "artifact digest mismatch: " + a.path;
      }
    }
    if (valid) {
      ++skipped_;
      supervisor_counter("supervisor_stage_skipped_total").inc();
      COLOC_LOG_INFO << "stage '" << stage << "' already complete; skipping";
      return StageOutcome::kSkippedValid;
    }
    // Journaled but unverifiable (or resume disabled): this stage and
    // everything after it must re-run against fresh inputs.
    ++replayed_;
    supervisor_counter("supervisor_stage_replayed_total").inc();
    if (!why.empty()) {
      COLOC_LOG_WARN << "stage '" << stage << "' journaled but invalid ("
                     << why << "); replaying it and all later stages";
    }
    journal_.reset_from(stage);
  }

  journal_.record_start(stage);
  body();

  std::vector<JournalArtifact> recorded;
  recorded.reserve(artifacts.size());
  for (const std::string& path : artifacts) {
    const std::optional<std::string> bytes = files_.read_if_exists(path);
    COLOC_CHECK_MSG(bytes.has_value(), "stage '" + stage +
                                           "' did not produce promised "
                                           "artifact: " +
                                           path);
    JournalArtifact a;
    a.path = path;
    a.bytes = bytes->size();
    a.digest = store::digest_hex(*bytes);
    recorded.push_back(std::move(a));
  }
  journal_.record_done(stage, recorded);
  ++executed_;
  supervisor_counter("supervisor_stage_executed_total").inc();
  return StageOutcome::kRan;
}

}  // namespace coloc::core
