#include "core/features.hpp"

#include "common/error.hpp"

namespace coloc::core {

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> kNames = {
      "baseExTime",  "numCoApp",    "coAppMem",    "targetMem",
      "coAppCM_CA",  "coAppCA_INS", "targetCM_CA", "targetCA_INS",
  };
  return kNames;
}

std::string to_string(FeatureId id) {
  return feature_names()[static_cast<std::size_t>(id)];
}

double BaselineProfile::time_at(std::size_t pstate_index) const {
  COLOC_CHECK_MSG(pstate_index < execution_time_s.size(),
                  "no baseline for that P-state");
  return execution_time_s[pstate_index];
}

BaselineProfile collect_baseline(sim::MeasurementSource& source,
                                 const sim::ApplicationSpec& app,
                                 fault::ResilientRunner* runner) {
  BaselineProfile profile;
  profile.app_name = app.name;
  const std::size_t num_pstates = source.machine().pstates.size();
  profile.execution_time_s.reserve(num_pstates);
  for (std::size_t p = 0; p < num_pstates; ++p) {
    sim::RunMeasurement m;
    if (runner != nullptr) {
      const std::string tag = "baseline|" + app.name + "|p" +
                              std::to_string(p);
      // No earlier reference exists for a baseline, so the slowdown
      // plausibility bound cannot apply (reference 0). But the baseline
      // is the sweep's most load-bearing reading — an undetected outlier
      // here poisons a feature column AND the reference of every campaign
      // cell of this (app, P-state). Guard it by run-to-run agreement: a
      // confirmation read at a disjoint repetition seed must land within
      // 3x. The recorded value is still the primary read, so fault-free
      // numerics are unchanged.
      constexpr std::uint64_t kConfirmRepOffset = 1u << 20;
      auto measured = runner->measure_cell(
          tag, 0.0, [&](std::uint64_t attempt) {
            sim::RunMeasurement m = source.run_alone(app, p, attempt);
            const sim::RunMeasurement confirm =
                source.run_alone(app, p, kConfirmRepOffset + attempt);
            const double ratio = m.execution_time_s /
                                 confirm.execution_time_s;
            if (!(ratio > 1.0 / 3.0 && ratio < 3.0)) {
              throw MeasurementError(
                  ErrorClass::kCorruptedData,
                  "baseline disagrees with its confirmation read: " + tag);
            }
            return m;
          });
      if (!measured) {
        throw MeasurementError(ErrorClass::kPermanent,
                               "baseline quarantined: " + tag);
      }
      m = std::move(*measured);
    } else {
      m = source.run_alone(app, p);
    }
    profile.execution_time_s.push_back(m.execution_time_s);
    if (p == 0) {
      // Counter ratios from the P0 run; they are frequency-invariant.
      profile.memory_intensity = m.counters.memory_intensity();
      profile.cm_per_ca = m.counters.cm_per_ca();
      profile.ca_per_ins = m.counters.ca_per_ins();
    }
  }
  return profile;
}

BaselineLibrary collect_baselines(
    sim::MeasurementSource& source,
    const std::vector<sim::ApplicationSpec>& apps,
    fault::ResilientRunner* runner) {
  BaselineLibrary library;
  for (const auto& app : apps) {
    if (runner == nullptr) {
      library.emplace(app.name, collect_baseline(source, app));
      continue;
    }
    try {
      library.emplace(app.name, collect_baseline(source, app, runner));
    } catch (const MeasurementError&) {
      // Already quarantined (and logged) by the runner; the campaign
      // degrades by skipping every cell that involves this application.
    }
  }
  return library;
}

std::array<double, kNumFeatures> compute_features(
    const BaselineProfile& target,
    const std::vector<const BaselineProfile*>& coapps,
    std::size_t pstate_index) {
  std::array<double, kNumFeatures> f{};
  f[static_cast<std::size_t>(FeatureId::kBaseExTime)] =
      target.time_at(pstate_index);
  f[static_cast<std::size_t>(FeatureId::kNumCoApp)] =
      static_cast<double>(coapps.size());
  double co_mem = 0.0, co_cmca = 0.0, co_cains = 0.0;
  for (const BaselineProfile* co : coapps) {
    COLOC_CHECK_MSG(co != nullptr, "null co-app baseline");
    co_mem += co->memory_intensity;
    co_cmca += co->cm_per_ca;
    co_cains += co->ca_per_ins;
  }
  f[static_cast<std::size_t>(FeatureId::kCoAppMem)] = co_mem;
  f[static_cast<std::size_t>(FeatureId::kTargetMem)] =
      target.memory_intensity;
  f[static_cast<std::size_t>(FeatureId::kCoAppCmCa)] = co_cmca;
  f[static_cast<std::size_t>(FeatureId::kCoAppCaIns)] = co_cains;
  f[static_cast<std::size_t>(FeatureId::kTargetCmCa)] = target.cm_per_ca;
  f[static_cast<std::size_t>(FeatureId::kTargetCaIns)] = target.ca_per_ins;
  return f;
}

}  // namespace coloc::core
