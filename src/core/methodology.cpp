#include "core/methodology.hpp"

#include <fstream>
#include <numeric>

#include "common/error.hpp"
#include "ml/serialization.hpp"

namespace coloc::core {

const ModelEvaluation& EvaluationSuite::find(ModelTechnique technique,
                                             FeatureSet set) const {
  for (const auto& e : evaluations) {
    if (e.id.technique == technique && e.id.feature_set == set) return e;
  }
  throw coloc::invalid_argument_error("model evaluation not found: " +
                                      ModelId{technique, set}.name());
}

EvaluationSuite evaluate_model_zoo(
    const ml::Dataset& dataset, const EvaluationConfig& config,
    std::optional<ModelId> collect_predictions_for) {
  // One ValidationJob per (technique, feature set), in zoo order with the
  // same factory salts as the historical per-model loop; the batch API
  // flattens all job×partition tasks across the worker pool and returns
  // numbers identical to validating each model in turn.
  std::vector<ModelId> ids;
  std::vector<ml::ValidationJob> jobs;
  std::uint64_t salt = 1;
  for (ModelTechnique technique : kAllTechniques) {
    for (FeatureSet set : kAllFeatureSets) {
      const ModelId id{technique, set};
      ml::ValidationJob job;
      job.options = config.validation;
      job.options.collect_test_predictions =
          collect_predictions_for && collect_predictions_for->technique ==
                                         technique &&
          collect_predictions_for->feature_set == set;
      const auto& columns = feature_set_columns(set);
      job.columns.assign(columns.begin(), columns.end());
      job.factory = make_model_factory(id, config.zoo, salt++);
      ids.push_back(id);
      jobs.push_back(std::move(job));
    }
  }

  auto results = ml::repeated_subsampling_validation_batch(dataset, jobs);

  EvaluationSuite suite;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ModelEvaluation evaluation;
    evaluation.id = ids[i];
    evaluation.result = std::move(results[i]);
    suite.evaluations.push_back(std::move(evaluation));
  }
  return suite;
}

ColocationPredictor ColocationPredictor::train(const ml::Dataset& dataset,
                                               const ModelId& id,
                                               const ModelZooOptions& options) {
  const auto& columns = feature_set_columns(id.feature_set);
  std::vector<std::size_t> rows(dataset.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  const linalg::Matrix x = dataset.design_matrix(rows, columns);
  const std::vector<double> y = dataset.target_subset(rows);
  ml::RegressorPtr model = make_model_factory(id, options)(x, y);
  return ColocationPredictor(id, std::move(model),
                             {columns.begin(), columns.end()});
}

ColocationPredictor ColocationPredictor::from_model(const ModelId& id,
                                                    ml::RegressorPtr model) {
  COLOC_CHECK_MSG(model != nullptr, "predictor needs a model");
  const auto& columns = feature_set_columns(id.feature_set);
  return ColocationPredictor(id, std::move(model),
                             {columns.begin(), columns.end()});
}

double ColocationPredictor::predict_time(
    const BaselineProfile& target,
    const std::vector<const BaselineProfile*>& coapps,
    std::size_t pstate_index) const {
  const auto all_features = compute_features(target, coapps, pstate_index);
  std::vector<double> selected;
  selected.reserve(columns_.size());
  for (std::size_t c : columns_) selected.push_back(all_features[c]);
  return model_->predict(selected);
}

double ColocationPredictor::predict_slowdown(
    const BaselineProfile& target,
    const std::vector<const BaselineProfile*>& coapps,
    std::size_t pstate_index) const {
  const double baseline = target.time_at(pstate_index);
  COLOC_CHECK_MSG(baseline > 0.0, "baseline time must be positive");
  return predict_time(target, coapps, pstate_index) / baseline;
}

void ColocationPredictor::save(std::ostream& os) const {
  os << "coloc-predictor v1\n";
  os << "technique " << to_string(id_.technique) << "\n";
  os << "feature_set " << to_string(id_.feature_set) << "\n";
  ml::save_model(os, *model_);
}

ColocationPredictor ColocationPredictor::load(std::istream& is) {
  std::string header;
  std::getline(is, header);
  COLOC_CHECK_MSG(header == "coloc-predictor v1",
                  "not a coloc predictor stream");
  std::string key, technique_name, set_name;
  COLOC_CHECK_MSG(
      static_cast<bool>(is >> key >> technique_name) && key == "technique",
      "predictor stream missing technique");
  COLOC_CHECK_MSG(
      static_cast<bool>(is >> key >> set_name) && key == "feature_set",
      "predictor stream missing feature set");
  is >> std::ws;

  ModelId id;
  if (technique_name == "linear") {
    id.technique = ModelTechnique::kLinear;
  } else if (technique_name == "nn") {
    id.technique = ModelTechnique::kNeuralNetwork;
  } else {
    throw coloc::invalid_argument_error("unknown technique: " +
                                        technique_name);
  }
  id.feature_set = parse_feature_set(set_name);

  ml::RegressorPtr model = ml::load_model(is);
  const auto& columns = feature_set_columns(id.feature_set);
  return ColocationPredictor(id, std::move(model),
                             {columns.begin(), columns.end()});
}

void ColocationPredictor::save_file(const std::string& path) const {
  std::ofstream f(path);
  COLOC_CHECK_MSG(f.good(), "cannot open predictor file: " + path);
  save(f);
}

ColocationPredictor ColocationPredictor::load_file(const std::string& path) {
  std::ifstream f(path);
  COLOC_CHECK_MSG(f.good(), "cannot open predictor file: " + path);
  return load(f);
}

ml::PcaResult analyze_features(const ml::Dataset& dataset) {
  std::vector<std::size_t> rows(dataset.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<std::size_t> columns(dataset.num_features());
  std::iota(columns.begin(), columns.end(), 0);
  const linalg::Matrix x = dataset.design_matrix(rows, columns);
  return ml::pca_fit(x);
}

}  // namespace coloc::core
