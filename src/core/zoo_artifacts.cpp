#include "core/zoo_artifacts.hpp"

#include <algorithm>
#include <numeric>
#include <thread>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace coloc::core {

namespace {

ml::RegressorPtr train_one(const ml::Dataset& dataset, const ModelId& id,
                           const ModelZooOptions& options) {
  const auto& columns = feature_set_columns(id.feature_set);
  std::vector<std::size_t> rows(dataset.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  const linalg::Matrix x = dataset.design_matrix(rows, columns);
  const std::vector<double> y = dataset.target_subset(rows);
  return make_model_factory(id, options)(x, y);
}

obs::Counter& retrained_counter() {
  return obs::Registry::global().counter("zoo_models_retrained_total");
}

}  // namespace

ModelId parse_model_id(const std::string& name) {
  const std::size_t dash = name.rfind('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= name.size()) {
    throw coloc::invalid_argument_error(
        "model id must look like 'linear-A' or 'nn-F', got '" + name + "'");
  }
  const std::string technique = name.substr(0, dash);
  ModelId id;
  if (technique == "linear") {
    id.technique = ModelTechnique::kLinear;
  } else if (technique == "nn") {
    id.technique = ModelTechnique::kNeuralNetwork;
  } else {
    throw coloc::invalid_argument_error("unknown model technique: '" +
                                        technique + "'");
  }
  id.feature_set = parse_feature_set(name.substr(dash + 1));
  return id;
}

std::vector<ModelId> all_model_ids() {
  std::vector<ModelId> ids;
  for (ModelTechnique technique : kAllTechniques) {
    for (FeatureSet set : kAllFeatureSets) {
      ids.push_back(ModelId{technique, set});
    }
  }
  return ids;
}

const ml::Regressor* TrainedZoo::find(const std::string& name) const {
  const auto it = models.find(name);
  return it == models.end() ? nullptr : it->second.get();
}

TrainedZoo train_full_zoo(const ml::Dataset& dataset,
                          const ModelZooOptions& options,
                          const std::vector<ModelId>& ids) {
  COLOC_CHECK_MSG(dataset.num_rows() > 0, "cannot train a zoo on no rows");
  TrainedZoo zoo;
  zoo.ids = ids;
  // Each identity trains independently and deterministically (per-identity
  // seed salts), so the twelve models fan out over the shared pool as flat
  // tasks — restart-level parallelism lives inside each fit as the fused
  // batched kernels, never as a nested pool. Commit stays strictly in ids
  // order, so the zoo is byte-identical to the historical serial loop.
  std::vector<ml::RegressorPtr> trained(ids.size());
  auto train_task = [&](std::size_t i) {
    trained[i] = train_one(dataset, ids[i], options);
  };
  const std::size_t workers =
      std::min(ids.size(), std::max<std::size_t>(
                               1, std::thread::hardware_concurrency()));
  if (workers > 1 && ids.size() > 1 && global_pool().size() > 1 &&
      !on_worker_thread()) {
    parallel_for(global_pool(), ids.size(), train_task, 1);
  } else {
    for (std::size_t i = 0; i < ids.size(); ++i) train_task(i);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    zoo.models.emplace(ids[i].name(), std::move(trained[i]));
  }
  return zoo;
}

store::ZooSaveResult save_trained_zoo(
    store::FileOps& files, const std::string& dir, const TrainedZoo& zoo,
    std::vector<std::pair<std::string, std::string>> provenance) {
  std::vector<store::ZooModel> models;
  models.reserve(zoo.models.size());
  for (const auto& [name, model] : zoo.models) {
    models.push_back(store::ZooModel{name, model.get()});
  }
  provenance.emplace_back("format", "coloc-zoo");
  provenance.emplace_back("models", std::to_string(models.size()));
  return store::save_zoo(files, dir, models, provenance);
}

ZooLoadOutcome load_or_repair_zoo(
    store::FileOps& files, const std::string& dir,
    const ml::Dataset& dataset, const ModelZooOptions& options,
    const std::vector<ModelId>& ids,
    std::vector<std::pair<std::string, std::string>> provenance) {
  ZooLoadOutcome outcome;
  outcome.report = store::load_zoo(files, dir);
  outcome.zoo.ids = ids;

  for (const ModelId& id : ids) {
    const std::string name = id.name();
    const auto it = outcome.report.models.find(name);
    if (it != outcome.report.models.end()) {
      outcome.zoo.models.emplace(name, std::move(it->second));
      continue;
    }
    // Quarantined, missing, absent from the manifest, or the bundle had
    // no manifest at all: retrain exactly this identity. Training is
    // deterministic, so the repaired entry is bit-identical to what an
    // undamaged save would have produced.
    outcome.zoo.models.emplace(name, train_one(dataset, id, options));
    outcome.retrained.push_back(name);
    retrained_counter().inc();
  }
  outcome.report.models.clear();  // ownership moved into the zoo

  if (!outcome.retrained.empty()) {
    COLOC_LOG_WARN << "zoo bundle " << dir << ": retrained "
                   << outcome.retrained.size() << " of " << ids.size()
                   << " models after verification failures";
    save_trained_zoo(files, dir, outcome.zoo, std::move(provenance));
    outcome.repaired = true;
  }
  return outcome;
}

}  // namespace coloc::core
