// Training-data collection campaign — Section IV-B3 / Table V.
//
// The paper's sweep, reproduced verbatim as nested loops:
//
//   for each multicore processor:
//     for each frequency (six P-states):
//       for each target application (all eleven):
//         for each co-located application (cg, sp, fluidanimate, ep):
//           for each number of co-locations (1 .. cores-1):
//             get_exec_time_of_target()
//
// Co-located copies are homogeneous (all the same application), giving a
// sparse but *uniform* cover of the co-location space — the design property
// the paper contrasts with random sampling in [DwF12].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "fault/checkpoint.hpp"
#include "fault/resilient_runner.hpp"
#include "ml/dataset.hpp"
#include "sim/execution.hpp"

namespace coloc::core {

struct CampaignConfig {
  /// Target applications (defaults to the full 11-app suite).
  std::vector<sim::ApplicationSpec> targets;
  /// Co-runner applications (defaults to the four class representatives).
  std::vector<sim::ApplicationSpec> coapps;
  /// Numbers of co-located copies to sweep; empty = 1 .. cores-1.
  std::vector<std::size_t> colocation_counts;
  /// P-state indices to sweep; empty = all states of the machine.
  std::vector<std::size_t> pstate_indices;
  /// Also include the zero-co-runner baseline rows in the dataset.
  bool include_alone_rows = false;
  /// Worker threads for cell measurement. 0 = coloc::configured_jobs()
  /// (the --jobs / COLOC_JOBS knob); 1 = serial. Any value produces a
  /// bit-identical dataset, checkpoint, and completeness report: cells are
  /// measured out of order but committed through a sequenced collector in
  /// sweep order, and every measurement is a pure function of its cell.
  std::size_t jobs = 0;

  static CampaignConfig paper_defaults();
};

/// Resilience knobs for a campaign. The defaults (retries under a deadline,
/// no checkpointing) are numerically identical to a plain sweep against a
/// healthy measurement source: a first attempt uses repetition 0, exactly
/// as the unwrapped loops did.
struct CampaignRobustness {
  fault::RetryPolicy retry;
  fault::PlausibilityBounds bounds;
  /// CSV state file for completed cells ("" disables checkpointing).
  std::string checkpoint_path;
  /// Cells between periodic checkpoint flushes (a final flush always runs).
  std::size_t checkpoint_every = 25;
  /// Load checkpoint_path first and skip already-measured tags.
  bool resume = false;
  /// Test hook simulating a crash: after this many measured (not resumed)
  /// cells the campaign flushes its checkpoint and throws. 0 = never.
  std::size_t abort_after_cells = 0;
};

struct CampaignResult {
  ml::Dataset dataset;  // 8 features + co-located execution time + tag
  BaselineLibrary baselines;
  std::size_t total_runs = 0;
  /// Attempt/retry/quarantine accounting for the whole sweep (baseline
  /// pass included). completeness() < 1 means the dataset has holes.
  fault::CompletenessReport completeness;

  /// Tag format: "<target>|<coapp>|x<count>|p<pstate>".
  static std::string make_tag(const std::string& target,
                              const std::string& coapp, std::size_t count,
                              std::size_t pstate);
  /// Extracts the target application name from a row tag.
  static std::string tag_target(const std::string& tag);
};

/// Runs the full campaign on one measurement source (a simulated machine,
/// or any decorated stack such as a fault::FaultInjector). Baselines are
/// collected first (one run-alone pass per app per P-state), then every
/// co-location cell is measured once, exactly like the paper's collection
/// code — but each measurement runs through a fault::ResilientRunner, so
/// flaky cells are retried with backoff and exhausted cells are
/// quarantined (dropped from the dataset, listed in the report) instead of
/// aborting the sweep.
///
/// Orchestration: the nested Table V loops are enumerated up front into a
/// flat task list; with config.jobs > 1 cell measurements fan out across a
/// worker pool inside a bounded dispatch window while the driver thread
/// commits results strictly in sweep order (dataset row, checkpoint
/// record, runner accounting, progress). The commit sequence — and hence
/// every output byte — is identical to the serial sweep at any thread
/// count; only wall-clock time changes.
CampaignResult run_campaign(sim::MeasurementSource& source,
                            const CampaignConfig& config,
                            const CampaignRobustness& robustness = {});

}  // namespace coloc::core
