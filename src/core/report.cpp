#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace coloc::core {

std::string to_string(Metric metric) {
  return metric == Metric::kMpe ? "MPE" : "NRMSE";
}

std::vector<FigureSeries> build_figure_series(const EvaluationSuite& suite,
                                              Metric metric) {
  std::vector<FigureSeries> series;
  for (ModelTechnique technique : kAllTechniques) {
    FigureSeries train_line{to_string(technique) + "-train", {}};
    FigureSeries test_line{to_string(technique) + "-test", {}};
    for (FeatureSet set : kAllFeatureSets) {
      const ml::ValidationResult& r = suite.find(technique, set).result;
      if (metric == Metric::kMpe) {
        train_line.values.push_back(r.train_mpe);
        test_line.values.push_back(r.test_mpe);
      } else {
        train_line.values.push_back(r.train_nrmse);
        test_line.values.push_back(r.test_nrmse);
      }
    }
    series.push_back(std::move(train_line));
    series.push_back(std::move(test_line));
  }
  return series;
}

std::string render_figure(const std::string& title,
                          const std::vector<FigureSeries>& series) {
  std::ostringstream os;
  os << title << "\n" << std::string(title.size(), '=') << "\n";
  os << "feature sets:           A     B     C     D     E     F\n";
  for (const auto& line : series) {
    os << std::left << std::setw(16) << line.label << std::right;
    os << std::fixed << std::setprecision(2);
    for (double v : line.values) os << std::setw(6) << v;
    os << "\n";
  }
  // CSV block for replotting.
  os << "\ncsv,set";
  for (const auto& line : series) os << "," << line.label;
  os << "\n";
  const char* sets = "ABCDEF";
  for (std::size_t i = 0; i < 6; ++i) {
    os << "csv," << sets[i];
    os << std::fixed << std::setprecision(4);
    for (const auto& line : series) {
      COLOC_CHECK_MSG(line.values.size() == 6, "series must cover sets A-F");
      os << "," << line.values[i];
    }
    os << "\n";
  }
  return os.str();
}

std::map<std::string, Summary> per_app_error_summaries(
    const std::vector<ml::TaggedPrediction>& predictions) {
  std::map<std::string, std::vector<double>> errors;
  for (const auto& p : predictions) {
    COLOC_CHECK_MSG(p.actual != 0.0, "actual time cannot be zero");
    const double pct = 100.0 * (p.predicted - p.actual) / p.actual;
    errors[CampaignResult::tag_target(p.tag)].push_back(pct);
  }
  std::map<std::string, Summary> out;
  for (const auto& [app, errs] : errors) out[app] = summarize(errs);
  return out;
}

std::map<std::string, Summary> per_app_time_summaries(
    const ml::Dataset& dataset) {
  std::map<std::string, std::vector<double>> times;
  for (std::size_t r = 0; r < dataset.num_rows(); ++r) {
    times[CampaignResult::tag_target(dataset.tag(r))].push_back(
        dataset.target(r));
  }
  std::map<std::string, Summary> out;
  for (const auto& [app, ts] : times) out[app] = summarize(ts);
  return out;
}

TextTable render_table3(const std::vector<sim::ApplicationSpec>& apps,
                        const BaselineLibrary& baselines) {
  TextTable table("Table III: Benchmark Applications & Memory Intensity");
  table.set_columns({"application", "suite", "class", "memory intensity"},
                    {Align::kLeft, Align::kLeft, Align::kLeft, Align::kRight});
  for (const auto& app : apps) {
    const auto it = baselines.find(app.name);
    COLOC_CHECK_MSG(it != baselines.end(),
                    "missing baseline for " + app.name);
    std::ostringstream mi;
    mi << std::scientific << std::setprecision(2)
       << it->second.memory_intensity;
    table.add_row({app.name + " (" + to_string(app.suite) + ")",
                   app.suite == sim::Suite::kParsec ? "PARSEC" : "NAS",
                   to_string(app.memory_class), mi.str()});
  }
  return table;
}

TextTable render_table4(const std::vector<sim::MachineConfig>& machines) {
  TextTable table("Table IV: Multicore Processors Used for Validation");
  table.set_columns(
      {"processor", "num. cores", "L3 cache", "frequency range"},
      {Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& m : machines) {
    std::ostringstream freq;
    freq << std::fixed << std::setprecision(2) << m.pstates.min_frequency()
         << "-" << m.pstates.max_frequency() << " GHz";
    table.add_row({m.name, TextTable::num(m.cores),
                   std::to_string(m.llc_bytes >> 20) + "MB", freq.str()});
  }
  return table;
}

TextTable render_table5(const std::vector<sim::MachineConfig>& machines,
                        const CampaignConfig& config) {
  TextTable table("Table V: Training Data Collection Parameters");
  table.set_columns({"processor", "P-state frequencies (GHz)", "targets",
                     "co-located apps", "num. of co-locations"},
                    {Align::kLeft, Align::kLeft, Align::kRight, Align::kLeft,
                     Align::kLeft});
  std::string coapps;
  for (const auto& c : config.coapps) {
    if (!coapps.empty()) coapps += ", ";
    coapps += c.name;
  }
  for (const auto& m : machines) {
    std::ostringstream freqs;
    freqs << std::fixed << std::setprecision(2);
    for (std::size_t p = 0; p < m.pstates.size(); ++p) {
      if (p) freqs << ", ";
      freqs << m.pstates[p].frequency_ghz;
    }
    table.add_row({m.name, freqs.str(),
                   TextTable::num(config.targets.size()), coapps,
                   "1-" + std::to_string(m.cores - 1)});
  }
  return table;
}

}  // namespace coloc::core
