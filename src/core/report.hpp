// Report/series builders: convert evaluation results into exactly the rows
// and series the paper's tables and figures present, so every bench binary
// is a thin printer around this module.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/methodology.hpp"

namespace coloc::core {

/// Which metric a figure plots.
enum class Metric { kMpe, kNrmse };
std::string to_string(Metric metric);

/// One plotted line: a value per feature set A-F.
struct FigureSeries {
  std::string label;
  std::vector<double> values;  // indexed by feature set order A..F
};

/// Builds the four lines of Figures 1-4 for one machine's evaluation
/// suite: {linear, nn} x {training error, testing error} for the metric.
std::vector<FigureSeries> build_figure_series(const EvaluationSuite& suite,
                                              Metric metric);

/// Renders a figure (title + per-set series) as text and appends a CSV
/// block for replotting.
std::string render_figure(const std::string& title,
                          const std::vector<FigureSeries>& series);

/// Per-application summary of signed percent errors (Figure 5b): median
/// and quartiles per target application, from a model's held-out
/// predictions across all validation partitions.
std::map<std::string, Summary> per_app_error_summaries(
    const std::vector<ml::TaggedPrediction>& predictions);

/// Per-application execution-time distributions (Figure 5a) straight from
/// the campaign dataset.
std::map<std::string, Summary> per_app_time_summaries(
    const ml::Dataset& dataset);

/// Table III renderer: application, suite, class, baseline memory
/// intensity (as measured on the simulated machine).
TextTable render_table3(const std::vector<sim::ApplicationSpec>& apps,
                        const BaselineLibrary& baselines);

/// Table IV renderer from machine configs.
TextTable render_table4(const std::vector<sim::MachineConfig>& machines);

/// Table V renderer from a machine + campaign config.
TextTable render_table5(const std::vector<sim::MachineConfig>& machines,
                        const CampaignConfig& config);

}  // namespace coloc::core
