// Write-ahead stage journal + pipeline supervisor: makes the end-to-end
// pipeline (campaign -> baselines -> train -> validate -> report)
// resumable after a crash or a clean SIGTERM/SIGINT stop.
//
// The journal is a line-oriented write-ahead log, appended durably
// (O_APPEND + fsync) at every stage boundary:
//
//   coloc-journal v1
//   start <stage>
//   artifact <stage> <path> <bytes> <digest>     (one per artifact)
//   done <stage>
//   stop                                          (clean-interrupt marker)
//
// A stage counts as completed only when its `done` line is present and
// complete; a torn tail (partial last line from a crash mid-append) is
// dropped on load, which re-runs exactly the stage that was in flight.
// On resume the supervisor re-verifies every completed stage's artifacts
// byte-for-byte (size + FNV-1a digest) before skipping it — a stage whose
// outputs were corrupted or deleted is replayed, along with everything
// after it, because later stages consumed the now-invalid bytes.
//
// SIGTERM/SIGINT do not kill the pipeline mid-commit: the handler only
// sets a flag, the in-flight stage finishes and journals `done`, then the
// supervisor journals `stop` and refuses further stages. A subsequent
// --resume run picks up from the first unfinished stage.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "store/file_ops.hpp"

namespace coloc::core {

/// One artifact recorded at a stage boundary.
struct JournalArtifact {
  std::string path;
  std::uint64_t bytes = 0;
  std::string digest;  // store::digest_hex of the file contents
};

/// A completed stage as recorded in the journal.
struct JournalStage {
  std::string name;
  std::vector<JournalArtifact> artifacts;
};

/// Parsed journal state (torn tail already dropped).
struct JournalState {
  std::vector<JournalStage> completed;  // in execution order
  bool clean_stop = false;              // trailing `stop` record present

  const JournalStage* find(const std::string& stage) const;
};

/// The write-ahead stage journal. Not thread-safe: the pipeline runs
/// stages sequentially by construction.
class StageJournal {
 public:
  /// Opens (and on resume, loads) the journal at `path`. When
  /// `resume` is false any existing journal is discarded and a fresh
  /// header is committed. When true, the existing file is parsed
  /// (tolerating a torn tail) and compacted: the surviving records are
  /// rewritten atomically so later appends start from a clean prefix.
  StageJournal(store::FileOps& files, std::string path, bool resume);

  const JournalState& state() const { return state_; }

  void record_start(const std::string& stage);
  void record_done(const std::string& stage,
                   const std::vector<JournalArtifact>& artifacts);
  void record_stop();

  /// Drops `stage` and every later completed stage from the journal
  /// (they must re-run), rewriting the file atomically.
  void reset_from(const std::string& stage);

  static JournalState parse(const std::string& text);

 private:
  void rewrite();
  void append(const std::string& line);

  store::FileOps& files_;
  std::string path_;
  JournalState state_;
};

enum class StageOutcome {
  kRan,           // body executed, artifacts journaled
  kSkippedValid,  // journal said done and every artifact digest verified
  kStopped,       // a stop was requested; body not executed
};

const char* to_string(StageOutcome outcome);

/// Orchestrates sequential pipeline stages through the journal.
class PipelineSupervisor {
 public:
  struct Options {
    std::string journal_path;
    bool resume = false;
    /// Storage seam; defaults to the real filesystem. The journal itself
    /// always uses the real filesystem — a fault-injected journal cannot
    /// supervise recovery from the faults it injects.
    store::FileOps* files = nullptr;
    /// Install SIGTERM/SIGINT handlers that request a clean stop.
    bool handle_signals = false;
  };

  explicit PipelineSupervisor(Options options);
  ~PipelineSupervisor();

  PipelineSupervisor(const PipelineSupervisor&) = delete;
  PipelineSupervisor& operator=(const PipelineSupervisor&) = delete;

  /// Runs one stage. `artifacts` are the files the stage promises to
  /// produce; after `body` returns they must all exist (checked) and
  /// their digests are journaled. On resume, a stage whose journal
  /// record and artifact digests all verify is skipped; a stage whose
  /// record is present but whose artifacts fail verification is
  /// replayed, as is everything journaled after it.
  StageOutcome run_stage(const std::string& stage,
                         const std::vector<std::string>& artifacts,
                         const std::function<void()>& body);

  /// True once a stop was requested (signal or request_stop). The next
  /// run_stage call will journal `stop` and return kStopped.
  bool stop_requested() const;

  /// Programmatic stop request (what the signal handlers call).
  static void request_stop();

  /// Clears a pending stop request (process-global; tests and fresh
  /// pipeline runs in the same process need this).
  static void clear_stop_request();

  /// Number of stages this run skipped / executed / replayed.
  std::size_t stages_skipped() const { return skipped_; }
  std::size_t stages_executed() const { return executed_; }
  std::size_t stages_replayed() const { return replayed_; }
  bool stopped_cleanly() const { return stopped_; }

  const StageJournal& journal() const { return journal_; }

 private:
  store::FileOps& files_;
  StageJournal journal_;
  bool resume_ = false;
  bool handle_signals_ = false;
  bool stopped_ = false;
  std::size_t skipped_ = 0;
  std::size_t executed_ = 0;
  std::size_t replayed_ = 0;
  using SignalHandler = void (*)(int);
  SignalHandler old_term_ = nullptr;
  SignalHandler old_int_ = nullptr;
};

}  // namespace coloc::core
