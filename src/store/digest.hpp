// Content digests for stored artifacts.
//
// Every bundle entry and every journaled stage artifact carries an FNV-1a
// 64-bit digest rendered as 16 lowercase hex digits. FNV-1a is not
// cryptographic — it defends against torn writes, truncation, and bit rot,
// not adversaries — and any single-byte change flips the digest, which is
// exactly the failure model the crash/recovery machinery targets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace coloc::store {

/// FNV-1a 64-bit over `data` (same function as obs::fnv1a64; re-exported
/// here so store callers do not reach into the observability layer).
std::uint64_t digest64(std::string_view data);

/// digest64 rendered as 16 lowercase hex digits.
std::string digest_hex(std::string_view data);

/// Renders any 64-bit value as 16 lowercase hex digits.
std::string to_hex16(std::uint64_t value);

}  // namespace coloc::store
