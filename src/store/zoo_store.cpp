#include "store/zoo_store.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "ml/serialization.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "store/digest.hpp"

namespace coloc::store {

namespace {

obs::Counter& corruption_counter(const char* reason) {
  return obs::Registry::global().counter("store_corruption_detected_total",
                                         {{"reason", reason}});
}

/// Entry names become file names; keep them path-safe and non-empty.
void check_entry_name(const std::string& name) {
  COLOC_CHECK_MSG(!name.empty(), "zoo entry name must not be empty");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    COLOC_CHECK_MSG(ok, "zoo entry name has unsafe character: " + name);
  }
}

}  // namespace

const char* to_string(ZooEntryState state) {
  switch (state) {
    case ZooEntryState::kLoaded: return "loaded";
    case ZooEntryState::kQuarantined: return "quarantined";
    case ZooEntryState::kMissing: return "missing";
  }
  return "unknown";
}

std::string ZooManifest::to_json() const {
  std::ostringstream os;
  os << "{\"format\":\"coloc-zoo\",\"version\":" << version << ",";
  os << "\"provenance\":{";
  bool first = true;
  for (const auto& [k, v] : provenance) {
    if (!first) os << ',';
    first = false;
    os << '"' << obs::json_escape(k) << "\":\"" << obs::json_escape(v)
       << '"';
  }
  os << "},\"entries\":[";
  first = true;
  for (const ZooEntry& e : entries) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << obs::json_escape(e.name) << "\",\"path\":\""
       << obs::json_escape(e.path) << "\",\"bytes\":" << e.bytes
       << ",\"digest\":\"" << e.digest << "\"}";
  }
  os << "]}";
  return os.str();
}

ZooManifest ZooManifest::from_json(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  const obs::JsonValue* format = doc.find("format");
  if (format == nullptr || !format->is_string() ||
      format->string != "coloc-zoo") {
    throw coloc::data_error("not a coloc-zoo manifest");
  }
  ZooManifest m;
  if (const obs::JsonValue* v = doc.find("version");
      v != nullptr && v->is_number()) {
    m.version = static_cast<int>(v->number);
  }
  if (m.version != kZooFormatVersion) {
    throw coloc::data_error("unsupported zoo manifest version " +
                            std::to_string(m.version));
  }
  if (const obs::JsonValue* v = doc.find("provenance");
      v != nullptr && v->is_object()) {
    for (const auto& [k, val] : v->object) {
      if (val.is_string()) m.provenance.emplace_back(k, val.string);
    }
  }
  if (const obs::JsonValue* v = doc.find("entries");
      v != nullptr && v->is_array()) {
    for (const obs::JsonValue& item : v->array) {
      if (!item.is_object()) continue;
      ZooEntry e;
      if (const obs::JsonValue* f = item.find("name");
          f != nullptr && f->is_string()) {
        e.name = f->string;
      }
      if (const obs::JsonValue* f = item.find("path");
          f != nullptr && f->is_string()) {
        e.path = f->string;
      }
      if (const obs::JsonValue* f = item.find("bytes");
          f != nullptr && f->is_number()) {
        e.bytes = static_cast<std::uint64_t>(f->number);
      }
      if (const obs::JsonValue* f = item.find("digest");
          f != nullptr && f->is_string()) {
        e.digest = f->string;
      }
      if (e.name.empty() || e.path.empty() || e.digest.empty()) {
        throw coloc::data_error("zoo manifest entry missing fields");
      }
      m.entries.push_back(std::move(e));
    }
  }
  return m;
}

const ZooEntry* ZooManifest::find(const std::string& name) const {
  for (const ZooEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

ZooSaveResult save_zoo(
    FileOps& files, const std::string& dir,
    const std::vector<ZooModel>& models,
    const std::vector<std::pair<std::string, std::string>>& provenance) {
  COLOC_CHECK_MSG(!dir.empty(), "zoo bundle needs a directory");
  files.create_directories(dir + "/models");

  ZooManifest manifest;
  manifest.provenance = provenance;
  std::sort(manifest.provenance.begin(), manifest.provenance.end());

  std::vector<const ZooModel*> ordered;
  ordered.reserve(models.size());
  for (const ZooModel& m : models) {
    check_entry_name(m.name);
    COLOC_CHECK_MSG(m.model != nullptr, "zoo model pointer is null: " +
                                            m.name);
    ordered.push_back(&m);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const ZooModel* a, const ZooModel* b) {
              return a->name < b->name;
            });
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    COLOC_CHECK_MSG(ordered[i - 1]->name != ordered[i]->name,
                    "duplicate zoo entry name: " + ordered[i]->name);
  }

  // Entries first, each durably in place before the manifest that names
  // them exists; the manifest rename below is the bundle's commit point.
  for (const ZooModel* m : ordered) {
    std::ostringstream body;
    ml::save_model(body, *m->model);
    const std::string bytes = body.str();
    ZooEntry entry;
    entry.name = m->name;
    entry.path = "models/" + m->name + ".model";
    entry.bytes = bytes.size();
    entry.digest = digest_hex(bytes);
    files.write_atomic(dir + "/" + entry.path, bytes);
    manifest.entries.push_back(std::move(entry));
  }

  const std::string rendered = manifest.to_json();
  files.write_atomic(dir + "/" + kZooManifestName, rendered);

  ZooSaveResult result;
  result.manifest = std::move(manifest);
  result.bundle_digest = digest_hex(rendered);
  return result;
}

bool LoadReport::complete() const {
  if (!manifest_ok) return false;
  return std::all_of(entries.begin(), entries.end(),
                     [](const ZooEntryReport& e) {
                       return e.state == ZooEntryState::kLoaded;
                     });
}

std::vector<std::string> LoadReport::names_in_state(
    ZooEntryState state) const {
  std::vector<std::string> names;
  for (const ZooEntryReport& e : entries) {
    if (e.state == state) names.push_back(e.name);
  }
  return names;
}

std::string LoadReport::summary() const {
  if (!manifest_ok) return "zoo bundle unreadable: " + error;
  std::size_t loaded = 0, quarantined = 0, missing = 0;
  for (const ZooEntryReport& e : entries) {
    switch (e.state) {
      case ZooEntryState::kLoaded: ++loaded; break;
      case ZooEntryState::kQuarantined: ++quarantined; break;
      case ZooEntryState::kMissing: ++missing; break;
    }
  }
  std::ostringstream os;
  os << loaded << " loaded, " << quarantined << " quarantined, " << missing
     << " missing of " << entries.size() << " zoo entries";
  return os.str();
}

LoadReport load_zoo(FileOps& files, const std::string& dir) {
  LoadReport report;
  const std::string manifest_path = dir + "/" + kZooManifestName;
  const std::optional<std::string> raw = files.read_if_exists(manifest_path);
  if (!raw.has_value()) {
    // An absent manifest is a legitimate "no bundle here" — an interrupted
    // save never commits one — so it is not counted as corruption.
    report.error = "no manifest at " + manifest_path;
    return report;
  }

  ZooManifest manifest;
  try {
    manifest = ZooManifest::from_json(*raw);
  } catch (const std::exception& e) {
    corruption_counter("manifest").inc();
    report.error = std::string("manifest corrupt: ") + e.what();
    COLOC_LOG_WARN << "zoo bundle " << dir << ": " << report.error;
    return report;
  }
  report.manifest_ok = true;
  report.bundle_digest = digest_hex(*raw);
  report.provenance = manifest.provenance;

  for (const ZooEntry& entry : manifest.entries) {
    ZooEntryReport er;
    er.name = entry.name;
    const std::optional<std::string> bytes =
        files.read_if_exists(dir + "/" + entry.path);
    if (!bytes.has_value()) {
      er.state = ZooEntryState::kMissing;
      er.detail = "file absent: " + entry.path;
      corruption_counter("missing").inc();
      report.entries.push_back(std::move(er));
      continue;
    }
    if (bytes->size() != entry.bytes ||
        digest_hex(*bytes) != entry.digest) {
      er.state = ZooEntryState::kQuarantined;
      er.detail = "digest mismatch (" + std::to_string(bytes->size()) +
                  " bytes, expected " + std::to_string(entry.bytes) + ")";
      corruption_counter("digest").inc();
      report.entries.push_back(std::move(er));
      continue;
    }
    try {
      std::istringstream body(*bytes);
      ml::RegressorPtr model = ml::load_model(body);
      er.state = ZooEntryState::kLoaded;
      report.models.emplace(entry.name, std::move(model));
    } catch (const std::exception& e) {
      // Digest-valid but unparseable: the writer persisted garbage. Still
      // quarantine rather than crash — the caller can retrain this entry.
      er.state = ZooEntryState::kQuarantined;
      er.detail = std::string("parse failed: ") + e.what();
      corruption_counter("parse").inc();
    }
    report.entries.push_back(std::move(er));
  }

  if (!report.complete()) {
    COLOC_LOG_WARN << "zoo bundle " << dir << ": " << report.summary();
  }
  return report;
}

}  // namespace coloc::store
