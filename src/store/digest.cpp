#include "store/digest.hpp"

#include <cstdio>

#include "obs/manifest.hpp"

namespace coloc::store {

std::uint64_t digest64(std::string_view data) {
  return obs::fnv1a64(data);
}

std::string to_hex16(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string digest_hex(std::string_view data) {
  return to_hex16(digest64(data));
}

}  // namespace coloc::store
