// Durable file I/O seam for every artifact the pipeline persists.
//
// All artifact writes in the library (zoo bundles, campaign checkpoints,
// stage journals) go through a store::FileOps instance instead of raw
// iostream calls, for two reasons:
//
//   1. Crash consistency. The real implementation writes through the
//      write-temp -> fsync(file) -> rename -> fsync(parent dir) discipline,
//      so a power loss at any instant leaves either the complete previous
//      file or the complete new file — never a torn mixture. A plain
//      rename without the two fsyncs only protects against process death,
//      not against the page cache dying with the machine.
//
//   2. Storage chaos. fault::StorageFaultInjector subclasses FileOps and
//      corrupts writes deterministically (torn write, bit flip,
//      truncation, dropped rename, ENOSPC), which is how the recovery
//      tests prove that readers detect — rather than silently consume —
//      every corruption the digests are meant to catch.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace coloc::store {

/// Filesystem operations used by artifact writers/readers. The base class
/// IS the real implementation; decorators (fault injectors, test doubles)
/// override the virtuals and forward to a wrapped instance.
class FileOps {
 public:
  virtual ~FileOps() = default;

  virtual bool exists(const std::string& path) const;

  /// Whole-file read. Throws coloc::runtime_error when the file cannot be
  /// opened or read.
  virtual std::string read(const std::string& path) const;

  /// read() that maps "file absent" to nullopt instead of throwing.
  std::optional<std::string> read_if_exists(const std::string& path) const;

  /// Durable atomic replacement of `path` with `bytes`:
  /// write `path`.tmp, fsync it, rename over `path`, fsync the parent
  /// directory. Throws coloc::runtime_error on any I/O failure; on
  /// failure `path` still holds its previous content (or stays absent).
  virtual void write_atomic(const std::string& path, std::string_view bytes);

  /// Durable append for write-ahead journals: appends `bytes` with
  /// O_APPEND and fsyncs before returning, so a record that this call
  /// acknowledged survives a crash. Appends are NOT atomic across
  /// crashes — a torn tail line is possible and journal readers must
  /// tolerate (ignore) an incomplete final record.
  virtual void append_durable(const std::string& path,
                              std::string_view bytes);

  virtual void remove(const std::string& path);

  virtual void create_directories(const std::string& path);

  /// Process-wide real-filesystem instance.
  static FileOps& real();
};

/// Convenience: FileOps::real().write_atomic(path, bytes). This is the one
/// helper legacy writers (e.g. the campaign checkpoint) call to get the
/// full fsync discipline without threading a FileOps through their API.
void write_file_atomic(const std::string& path, std::string_view bytes);

/// Directory component of `path` ("." when there is none).
std::string parent_directory(const std::string& path);

}  // namespace coloc::store
