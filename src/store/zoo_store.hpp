// Crash-consistent, checksummed on-disk format for a trained model zoo.
//
// A "zoo bundle" is a directory:
//
//   DIR/
//     MANIFEST.json          committed LAST — the bundle's commit record
//     models/<name>.model    one ml::save_model stream per trained model
//
// Write protocol: every model file is written with the durable atomic
// discipline (write-temp -> fsync -> rename -> fsync parent), then the
// manifest — which names every entry with its byte count and FNV-1a
// digest plus free-form provenance (feature sets, training seed, dataset
// digest) — is written the same way, last. A crash at any point leaves
// either no manifest (bundle absent / previous bundle intact) or a
// manifest whose digests let the loader prove which entries are whole.
//
// Read protocol: load_zoo never trusts bytes it cannot verify. Each entry
// is checked against its manifest digest and parsed defensively; failures
// quarantine that one entry — the typed LoadReport tells callers exactly
// which models loaded, which were quarantined (with a reason), and which
// are missing, so a deployment can degrade gracefully and retrain only
// the damaged models instead of the whole zoo.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ml/model.hpp"
#include "store/file_ops.hpp"

namespace coloc::store {

inline constexpr int kZooFormatVersion = 1;
inline constexpr const char* kZooManifestName = "MANIFEST.json";

/// One model offered for persistence (the pointer is borrowed).
struct ZooModel {
  std::string name;
  const ml::Regressor* model = nullptr;
};

/// One manifest entry: where a model lives and what its bytes must hash to.
struct ZooEntry {
  std::string name;
  std::string path;  // relative to the bundle directory
  std::uint64_t bytes = 0;
  std::string digest;  // digest_hex of the entry file
};

struct ZooManifest {
  int version = kZooFormatVersion;
  std::vector<ZooEntry> entries;                            // sorted by name
  std::vector<std::pair<std::string, std::string>> provenance;  // sorted keys

  /// Deterministic rendering: fixed key order, entries and provenance
  /// sorted, no timestamps — two identical zoos serialize byte-identically.
  std::string to_json() const;
  static ZooManifest from_json(const std::string& text);

  const ZooEntry* find(const std::string& name) const;
};

struct ZooSaveResult {
  ZooManifest manifest;
  /// digest_hex of the committed MANIFEST.json bytes — the bundle-level
  /// digest recorded in run manifests and stage journals. Because every
  /// entry's digest is inside the manifest, this one value covers the
  /// whole bundle transitively.
  std::string bundle_digest;
};

/// Writes a zoo bundle into `dir` (created if needed). Entry files first,
/// manifest last; every write is durable-atomic through `files`. Throws
/// coloc::runtime_error on I/O failure (including injected ENOSPC) — the
/// manifest is not committed in that case.
ZooSaveResult save_zoo(
    FileOps& files, const std::string& dir,
    const std::vector<ZooModel>& models,
    const std::vector<std::pair<std::string, std::string>>& provenance = {});

enum class ZooEntryState {
  kLoaded,       // digest verified, parsed successfully
  kQuarantined,  // present but corrupt (digest/size/parse mismatch)
  kMissing,      // named in the manifest, file absent
};

const char* to_string(ZooEntryState state);

struct ZooEntryReport {
  std::string name;
  ZooEntryState state = ZooEntryState::kMissing;
  std::string detail;  // human-readable reason for non-loaded states
};

/// Outcome of load_zoo. `models` holds only verified entries; everything
/// else is accounted for in `entries` so a caller can retrain exactly the
/// quarantined/missing names.
struct LoadReport {
  /// False when the bundle has no readable, well-formed manifest at all
  /// (absent directory, missing MANIFEST.json, corrupt JSON, bad version).
  bool manifest_ok = false;
  std::string error;  // why manifest_ok is false
  std::string bundle_digest;
  std::vector<std::pair<std::string, std::string>> provenance;
  std::vector<ZooEntryReport> entries;
  std::map<std::string, ml::RegressorPtr> models;

  bool complete() const;  // manifest_ok and every entry loaded
  std::vector<std::string> names_in_state(ZooEntryState state) const;
  std::string summary() const;
};

/// Loads a zoo bundle, verifying every entry. Never throws for corruption
/// — damage is reported per entry (and counted in the
/// store_corruption_detected_total metric); only programmer errors throw.
LoadReport load_zoo(FileOps& files, const std::string& dir);

}  // namespace coloc::store
