#include "store/file_ops.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#define COLOC_STORE_POSIX 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "common/error.hpp"

namespace coloc::store {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw coloc::runtime_error(what + " " + path + ": " +
                             std::strerror(errno));
}

#ifdef COLOC_STORE_POSIX

/// Writes all of `bytes` to `fd`, retrying short writes and EINTR.
void write_all(int fd, std::string_view bytes, const std::string& path) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("cannot write", path);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void fsync_fd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) throw_errno("cannot fsync", path);
}

/// fsyncs the directory containing `path` so the rename (or file creation)
/// itself is durable, not just the file contents. Best effort on
/// filesystems that reject directory fsync (returns silently).
void fsync_parent(const std::string& path) {
  const std::string dir = parent_directory(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // e.g. O_DIRECTORY unsupported target
  ::fsync(fd);         // EINVAL on some filesystems; nothing to do about it
  ::close(fd);
}

#endif  // COLOC_STORE_POSIX

}  // namespace

std::string parent_directory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool FileOps::exists(const std::string& path) const {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

std::string FileOps::read(const std::string& path) const {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw coloc::runtime_error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) throw coloc::runtime_error("read failed: " + path);
  return buffer.str();
}

std::optional<std::string> FileOps::read_if_exists(
    const std::string& path) const {
  if (!exists(path)) return std::nullopt;
  return read(path);
}

void FileOps::write_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
#ifdef COLOC_STORE_POSIX
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot open temp file", tmp);
  try {
    write_all(fd, bytes, tmp);
    fsync_fd(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("cannot close temp file", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("cannot rename over", path);
  }
  fsync_parent(path);
#else
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw coloc::runtime_error("cannot open temp file " + tmp);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) throw coloc::runtime_error("failed writing temp file " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw coloc::runtime_error("cannot rename " + tmp + " over " + path +
                               ": " + ec.message());
  }
#endif
}

void FileOps::append_durable(const std::string& path, std::string_view bytes) {
#ifdef COLOC_STORE_POSIX
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) throw_errno("cannot open for append", path);
  try {
    write_all(fd, bytes, path);
    fsync_fd(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::close(fd) != 0) throw_errno("cannot close", path);
  // First append creates the file; make the directory entry durable too.
  fsync_parent(path);
#else
  std::ofstream os(path, std::ios::binary | std::ios::app);
  if (!os) throw coloc::runtime_error("cannot open for append: " + path);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  if (!os) throw coloc::runtime_error("append failed: " + path);
#endif
}

void FileOps::remove(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    throw coloc::runtime_error("cannot remove " + path + ": " +
                               ec.message());
  }
}

void FileOps::create_directories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    throw coloc::runtime_error("cannot create directories " + path + ": " +
                               ec.message());
  }
}

FileOps& FileOps::real() {
  static FileOps instance;
  return instance;
}

void write_file_atomic(const std::string& path, std::string_view bytes) {
  FileOps::real().write_atomic(path, bytes);
}

}  // namespace coloc::store
