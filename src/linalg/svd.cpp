#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace coloc::linalg {

std::size_t SvdResult::rank(double tol) const {
  if (singular_values.empty()) return 0;
  const double cutoff = tol * singular_values.front();
  std::size_t r = 0;
  for (double s : singular_values) {
    if (s > cutoff) ++r;
  }
  return r;
}

SvdResult svd(const Matrix& a, int max_sweeps, double tol) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  COLOC_CHECK_MSG(m >= n, "svd requires rows >= cols (use A^T otherwise)");
  COLOC_CHECK_MSG(n >= 1, "svd needs at least one column");

  // One-sided Jacobi: orthogonalize the columns of U (initialized to A)
  // with plane rotations accumulated into V.
  Matrix u = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries for the (p, q) column pair.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += u(i, p) * u(i, p);
          aqq += u(i, q) * u(i, q);
          apq += u(i, p) * u(i, q);
        }
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) ||
            (app == 0.0 && aqq == 0.0)) {
          continue;
        }
        converged = false;
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t i = 0; i < m; ++i) {
          const double up = u(i, p);
          const double uq = u(i, q);
          u(i, p) = c * up - s * uq;
          u(i, q) = s * up + c * uq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Column norms are the singular values; normalize U's columns.
  SvdResult result;
  result.singular_values.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += u(i, c) * u(i, c);
    result.singular_values[c] = std::sqrt(norm);
  }

  // Sort descending, permuting U and V columns accordingly.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&result](auto x, auto y) {
    return result.singular_values[x] > result.singular_values[y];
  });

  Matrix u_sorted(m, n);
  Matrix v_sorted(n, n);
  Vector s_sorted(n);
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t src = order[c];
    const double sv = result.singular_values[src];
    s_sorted[c] = sv;
    const double inv = sv > 0.0 ? 1.0 / sv : 0.0;
    for (std::size_t i = 0; i < m; ++i) u_sorted(i, c) = u(i, src) * inv;
    for (std::size_t i = 0; i < n; ++i) v_sorted(i, c) = v(i, src);
  }
  result.u = std::move(u_sorted);
  result.v = std::move(v_sorted);
  result.singular_values = std::move(s_sorted);
  return result;
}

Vector svd_least_squares(const Matrix& a, std::span<const double> b,
                         double rcond) {
  COLOC_CHECK_MSG(a.rows() == b.size(), "rhs length mismatch");
  const SvdResult decomposition = svd(a);
  const std::size_t n = a.cols();
  const double cutoff =
      rcond * (decomposition.singular_values.empty()
                   ? 0.0
                   : decomposition.singular_values.front());

  // x = V * diag(1/s) * U^T * b, zeroing tiny singular values.
  Vector utb(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    double dot_ub = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
      dot_ub += decomposition.u(i, c) * b[i];
    utb[c] = decomposition.singular_values[c] > cutoff
                 ? dot_ub / decomposition.singular_values[c]
                 : 0.0;
  }
  Vector x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < n; ++c)
      x[i] += decomposition.v(i, c) * utb[c];
  }
  return x;
}

}  // namespace coloc::linalg
