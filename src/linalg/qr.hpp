// Householder QR factorization and least-squares solves.
//
// This is the numerical engine behind the paper's linear models (Section
// III-C): the paper used SciPy's linear least squares; we provide the
// numerically equivalent QR-based solver.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace coloc::linalg {

/// Compact Householder QR of an m x n matrix with m >= n.
/// R is stored in the upper triangle; the Householder vectors in the lower
/// trapezoid plus `tau`. Provides Q^T*b application and R backsolve, which is
/// all least squares needs — Q is never formed explicitly.
class QR {
 public:
  /// Factorizes `a` (m >= n required).
  explicit QR(Matrix a);

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

  /// Numerical rank estimate: number of diagonal R entries above
  /// tol * max|R_ii|.
  std::size_t rank(double tol = 1e-12) const;

  /// Minimum-norm-in-the-residual least squares solution of A x ≈ b.
  /// Throws coloc::runtime_error if R is numerically singular.
  Vector solve(std::span<const double> b) const;

  /// Applies Q^T to b in place (b must have m entries).
  void apply_qt(std::span<double> b) const;

  /// Solves R x = y for the leading n entries of y.
  Vector backsolve(std::span<const double> y) const;

  /// Extracts the explicit R factor (n x n upper triangular).
  Matrix r_factor() const;

  /// Reconstructs the thin Q (m x n) — used by tests to check Q^T Q = I.
  Matrix thin_q() const;

 private:
  Matrix qr_;
  Vector tau_;
};

/// Convenience one-shot least squares: returns argmin_x ||A x - b||_2.
Vector least_squares(const Matrix& a, std::span<const double> b);

/// Ridge-regularized least squares: argmin ||A x - b||^2 + lambda ||x||^2,
/// solved by augmenting A with sqrt(lambda) * I. lambda >= 0.
Vector ridge_least_squares(const Matrix& a, std::span<const double> b,
                           double lambda);

}  // namespace coloc::linalg
