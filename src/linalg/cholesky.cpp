#include "linalg/cholesky.hpp"

#include <cmath>

namespace coloc::linalg {

Cholesky::Cholesky(const Matrix& a) {
  COLOC_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (s <= 0.0) {
          throw coloc::runtime_error(
              "Cholesky: matrix is not positive definite");
        }
        l_(i, i) = std::sqrt(s);
      } else {
        l_(i, j) = s / l_(j, j);
      }
    }
  }
}

Vector Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = size();
  COLOC_CHECK_MSG(b.size() == n, "rhs length mismatch");
  // Forward substitution: L y = b.
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  // Backward substitution: L^T x = y.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

double Cholesky::log_determinant() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Vector normal_equations_solve(const Matrix& a, std::span<const double> b,
                              double lambda) {
  const std::size_t n = a.cols();
  Matrix ata(n, n, 0.0);
  // A^T A accumulated row by row (rank-1 updates keep access sequential).
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t i = 0; i < n; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) ata(i, j) += ri * row[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) ata(i, i) += lambda;
  const Vector atb = matvec_transposed(a, b);
  return Cholesky(ata).solve(atb);
}

}  // namespace coloc::linalg
