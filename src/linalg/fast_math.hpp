// Fast, deterministic transcendental kernels for the ML hot loops.
//
// std::tanh dominates MLP training cost (one call per hidden unit per row
// per SCG evaluation, ~2/3 of evaluation wall time at -O3), and libm's
// implementation neither inlines nor vectorizes. fast_tanh below is a
// branch-free double-precision replacement accurate to ~4 ulp (max
// relative error < 1e-15 over the full range), built so the SAME
// instruction sequence runs per element whether the compiler executes it
// scalar or SIMD — scalar fast_tanh and vector_tanh are bit-identical,
// which is what lets the batched MLP path reproduce the rowwise reference
// path exactly (see DESIGN.md, Performance).
//
// Derivation: tanh(x) = sign(x) * em / (em + 2) with em = expm1(2|x|).
// expm1 is computed by range reduction 2|x| = n*ln2 + r (two-part
// Cody-Waite constant, magic-number rounding so no lround call), a
// degree-12 polynomial for e^r - 1 (no constant term, so no cancellation
// near zero), and exponent assembly of 2^n via bit operations. |x| >= 20
// saturates to +/-1 through the clamp (expm1(40) / (expm1(40)+2) rounds
// to 1.0 in double precision).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace coloc::linalg {

/// Branch-free tanh replacement; bit-identical to vector_tanh per element.
inline double fast_tanh(double x) {
  const double kLog2e = 1.4426950408889634073599246810019;
  const double kLn2Hi = 6.93147180369123816490e-01;
  const double kLn2Lo = 1.90821492927058770002e-10;
  // 1.5 * 2^52: adding it rounds a small double to the nearest integer in
  // the low mantissa bits (round-to-nearest-even, |value| < 2^51).
  const double kMagic = 6755399441055744.0;

  std::uint64_t xb;
  std::memcpy(&xb, &x, 8);
  const std::uint64_t sign = xb & 0x8000000000000000ULL;
  const std::uint64_t ab = xb & 0x7fffffffffffffffULL;
  double ax;
  std::memcpy(&ax, &ab, 8);

  double a2 = ax * 2.0;
  a2 = (a2 > 40.0) ? 40.0 : a2;  // saturation region; NaN passes through

  const double nm = a2 * kLog2e + kMagic;  // n in the low mantissa bits
  const double n_d = nm - kMagic;          // n as a double
  const double r = (a2 - n_d * kLn2Hi) - n_d * kLn2Lo;
  const double r2 = r * r;
  // e^r - 1 for r in [-ln2/2, ln2/2], Taylor to degree 12 (< 0.5 ulp).
  const double p =
      r + r2 * (1.0 / 2 +
      r * (1.0 / 6 +
      r * (1.0 / 24 +
      r * (1.0 / 120 +
      r * (1.0 / 720 +
      r * (1.0 / 5040 +
      r * (1.0 / 40320 +
      r * (1.0 / 362880 +
      r * (1.0 / 3628800 +
      r * (1.0 / 39916800 +
      r * (1.0 / 479001600)))))))))));

  std::uint64_t nm_bits;
  std::memcpy(&nm_bits, &nm, 8);
  const std::uint64_t two_n_bits = ((nm_bits & 0x7ffULL) + 1023ULL) << 52;
  double two_n;
  std::memcpy(&two_n, &two_n_bits, 8);
  // expm1(a2) = 2^n * (e^r - 1) + (2^n - 1), exact reassembly order.
  const double em = two_n * p + (two_n - 1.0);
  const double t = em / (em + 2.0);

  std::uint64_t tb;
  std::memcpy(&tb, &t, 8);
  tb |= sign;
  double result;
  std::memcpy(&result, &tb, 8);
  return result;
}

/// In-place tanh over a contiguous array. Compiled in its own translation
/// unit with -fno-trapping-math so GCC if-converts the saturation clamp
/// and vectorizes the loop (the flag only relaxes FP-exception ordering;
/// values are unchanged). Bit-identical to calling fast_tanh per element.
void vector_tanh(double* z, std::size_t n);

}  // namespace coloc::linalg
