#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace coloc::linalg {

EigenResult eigen_symmetric(const Matrix& a, int max_sweeps, double tol) {
  COLOC_CHECK_MSG(a.rows() == a.cols(), "eigen_symmetric needs square input");
  const std::size_t n = a.rows();
  // Verify symmetry relative to the largest magnitude entry.
  double amax = 0.0;
  for (double v : a.data()) amax = std::max(amax, std::abs(v));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      COLOC_CHECK_MSG(std::abs(a(i, j) - a(j, i)) <= 1e-9 * std::max(1.0, amax),
                      "eigen_symmetric: input is not symmetric");

  Matrix d = a;
  Matrix v = Matrix::identity(n);

  auto off_diagonal_norm = [&d, n] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += d(i, j) * d(i, j);
    return std::sqrt(2.0 * s);
  };

  const double stop = tol * std::max(1.0, amax);
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= stop) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Rotate rows/columns p and q of D.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        // Accumulate the rotation into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenResult result;
  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = d(i, i);

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&result](std::size_t x, std::size_t y) {
    return result.values[x] > result.values[y];
  });
  Vector sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_values[i] = result.values[order[i]];
    for (std::size_t r = 0; r < n; ++r)
      sorted_vectors(r, i) = v(r, order[i]);
  }
  result.values = std::move(sorted_values);
  result.vectors = std::move(sorted_vectors);
  return result;
}

}  // namespace coloc::linalg
