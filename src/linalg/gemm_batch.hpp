// Batched (stacked-plane) GEMM entry point for the fused multi-restart MLP
// trainer.
//
// The fused SCG path stacks R restarts' layer weights side by side into one
// wide operand (cols = R * hidden) so a single GEMM serves every live
// restart per iteration. The kernel here is deliberately shaped like the
// rowwise reference loop in src/ml/mlp.cpp: per output element the i-terms
// accumulate in ascending order starting from the bias, so the batched and
// rowwise paths are bit-identical per element no matter how many planes are
// stacked (vectorizing across the column axis never reorders any single
// element's accumulation chain).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace coloc::linalg {

/// out(r, c) = bias[c] + sum_i x(r, i) * w(i, c), i ascending per element.
/// Resizes `out` to x.rows() x w.cols() (capacity reused when warm).
/// Requires x.cols() == w.rows() and bias.size() == w.cols().
void gemm_bias(const Matrix& x, const Matrix& w, std::span<const double> bias,
               Matrix& out);

}  // namespace coloc::linalg
