// Dense row-major matrix/vector types for the regression and NN modules.
//
// The library's ML workloads are small (hundreds to thousands of rows, at
// most a few dozen columns), so clarity and correctness dominate; we still
// keep storage contiguous and loops cache-friendly.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace coloc::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);
  /// Stacks rows (each inner vector must share one length).
  static Matrix from_rows(const std::vector<Vector>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Reshapes in place. Element values are unspecified afterwards (new
  /// cells are zero, surviving cells keep whatever landed there); the
  /// backing vector's capacity is retained, so hot paths that assemble a
  /// batch per call reuse their allocation once warmed up.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  Vector col(std::size_t c) const;
  void set_col(std::size_t c, std::span<const double> values);

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Fast path: cache-tiled over the inner dimension and fanned
/// out over row blocks on global_pool() when the product is large enough
/// (serial from pool workers — see on_worker_thread()). Bit-identical to
/// matmul_naive: per output element the k-terms accumulate in the same
/// ascending order regardless of tiling or thread count.
Matrix matmul(const Matrix& a, const Matrix& b);
/// Reference oracle for matmul: the original unblocked i-k-j loop.
Matrix matmul_naive(const Matrix& a, const Matrix& b);
/// C = A * B^T (both operands stream row-contiguously; this is the natural
/// GEMM shape for row-major weight matrices). C(i,j) = dot(a.row(i),
/// b.row(j)), threaded over row blocks like matmul.
Matrix matmul_transposed(const Matrix& a, const Matrix& b);
/// y = A * x into a caller-provided buffer (no allocation). Uses four
/// partial accumulators per row so the inner loop vectorizes; sums may
/// differ from matvec by reassociation (within ~1e-15 relative).
void gemv(const Matrix& a, std::span<const double> x, std::span<double> y);
/// y = A * x.
Vector matvec(const Matrix& a, std::span<const double> x);
/// y = A^T * x.
Vector matvec_transposed(const Matrix& a, std::span<const double> x);

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
/// a += s * b (axpy).
void axpy(double s, std::span<const double> b, std::span<double> a);

/// Frobenius norm of (a - b); used by tests.
double frobenius_distance(const Matrix& a, const Matrix& b);

}  // namespace coloc::linalg
