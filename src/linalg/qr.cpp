#include "linalg/qr.hpp"

#include <cmath>

namespace coloc::linalg {

QR::QR(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  COLOC_CHECK_MSG(m >= n, "QR requires rows >= cols");
  tau_.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0 ? -norm : norm;
    const double vk = qr_(k, k) - alpha;
    // v = [1, qr(k+1..m-1, k)/vk]; beta = -vk / alpha.
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= vk;
    tau_[k] = -vk / alpha;
    qr_(k, k) = alpha;

    // Apply the reflector to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

std::size_t QR::rank(double tol) const {
  double max_diag = 0.0;
  for (std::size_t k = 0; k < cols(); ++k)
    max_diag = std::max(max_diag, std::abs(qr_(k, k)));
  if (max_diag == 0.0) return 0;
  std::size_t r = 0;
  for (std::size_t k = 0; k < cols(); ++k)
    if (std::abs(qr_(k, k)) > tol * max_diag) ++r;
  return r;
}

void QR::apply_qt(std::span<double> b) const {
  const std::size_t m = rows();
  const std::size_t n = cols();
  COLOC_CHECK_MSG(b.size() == m, "apply_qt length mismatch");
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = b[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * b[i];
    s *= tau_[k];
    b[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) b[i] -= s * qr_(i, k);
  }
}

Vector QR::backsolve(std::span<const double> y) const {
  const std::size_t n = cols();
  COLOC_CHECK_MSG(y.size() >= n, "backsolve needs at least n entries");
  double max_diag = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    max_diag = std::max(max_diag, std::abs(qr_(k, k)));
  const double tol = 1e-13 * max_diag;
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= qr_(ii, j) * x[j];
    const double d = qr_(ii, ii);
    if (std::abs(d) <= tol) {
      throw coloc::runtime_error("QR backsolve: numerically singular R");
    }
    x[ii] = s / d;
  }
  return x;
}

Vector QR::solve(std::span<const double> b) const {
  COLOC_CHECK_MSG(b.size() == rows(), "rhs length mismatch");
  Vector y(b.begin(), b.end());
  apply_qt(y);
  return backsolve(y);
}

Matrix QR::r_factor() const {
  const std::size_t n = cols();
  Matrix r(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) r(i, j) = qr_(i, j);
  return r;
}

Matrix QR::thin_q() const {
  const std::size_t m = rows();
  const std::size_t n = cols();
  Matrix q(m, n, 0.0);
  // Apply the reflectors in reverse to the first n columns of I.
  for (std::size_t c = 0; c < n; ++c) {
    Vector e(m, 0.0);
    e[c] = 1.0;
    for (std::size_t kk = n; kk-- > 0;) {
      if (tau_[kk] == 0.0) continue;
      double s = e[kk];
      for (std::size_t i = kk + 1; i < m; ++i) s += qr_(i, kk) * e[i];
      s *= tau_[kk];
      e[kk] -= s;
      for (std::size_t i = kk + 1; i < m; ++i) e[i] -= s * qr_(i, kk);
    }
    q.set_col(c, e);
  }
  return q;
}

Vector least_squares(const Matrix& a, std::span<const double> b) {
  return QR(a).solve(b);
}

Vector ridge_least_squares(const Matrix& a, std::span<const double> b,
                           double lambda) {
  COLOC_CHECK_MSG(lambda >= 0.0, "ridge lambda must be nonnegative");
  if (lambda == 0.0) return least_squares(a, b);
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix aug(m + n, n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) aug(i, j) = a(i, j);
  const double s = std::sqrt(lambda);
  for (std::size_t j = 0; j < n; ++j) aug(m + j, j) = s;
  Vector rhs(m + n, 0.0);
  for (std::size_t i = 0; i < m; ++i) rhs[i] = b[i];
  return QR(std::move(aug)).solve(rhs);
}

}  // namespace coloc::linalg
