// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Powers the PCA feature ranking of Section III-B: the covariance matrices
// there are at most 8x8, where Jacobi is simple, robust and accurate.
#pragma once

#include "linalg/matrix.hpp"

namespace coloc::linalg {

/// Result of eigen_symmetric: A = V diag(values) V^T with orthonormal V.
/// Eigenvalues are sorted descending; columns of `vectors` correspond.
struct EigenResult {
  Vector values;
  Matrix vectors;  // column i is the eigenvector for values[i]
};

/// Computes all eigenpairs of a symmetric matrix. `a` must be square and
/// (numerically) symmetric; asymmetry beyond 1e-9 relative is rejected.
EigenResult eigen_symmetric(const Matrix& a, int max_sweeps = 64,
                            double tol = 1e-12);

}  // namespace coloc::linalg
