// Built with -fno-trapping-math -ffp-contract=off (see
// linalg/CMakeLists.txt): contraction stays off in every clone, so the
// AVX2 / AVX-512 variants differ from the baseline build only in lane
// count — never in rounding — and every form below reproduces the scalar
// accumulation order documented in gemm_batch.hpp bit for bit.
//
// Two shapes, picked per call:
//  - Register-chunk (cols <= 32, inner <= 8): the MLP design matrices are
//    short and fat-free — 1-8 input columns against a 10-20-wide hidden
//    layer — so each 8-column output chunk keeps its accumulators in one
//    vector register across a fully unrolled input loop (compile-time
//    INNER), touching each output element exactly once. Measured ~1.5-2.8x
//    over the streaming form at those shapes.
//  - Two-row streaming (everything else): the stacked multi-restart planes
//    are wide, so the inner loop streams along the contiguous column axis;
//    processing two batch rows per pass amortizes every W load across two
//    output rows. Measured ~1.2-1.6x over one-row streaming at wide >= 40.
//
// Both keep each element's chain `bias, +x0*w0, +x1*w1, ...` (i ascending)
// as separate in-order updates, never a reassociated pair: the chunk form
// accumulates that exact chain in a register; the streaming form replays
// it through the output row.
#include "linalg/gemm_batch.hpp"

#include <cstring>

#include "common/error.hpp"

namespace coloc::linalg {

namespace {

// Function multi-versioning, same pattern as vector_tanh: the loader picks
// the widest clone the CPU supports at first call. Helpers are
// always_inline so their bodies compile with each clone's ISA. The chunk
// and streaming shapes are cloned as *separate* functions behind a plain
// dispatcher: merging them into one cloned body makes GCC pick a shared
// (shuffle-heavy) vectorization strategy that costs the chunk path ~3.7x.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__)
#define COLOC_GEMM_BATCH_CLONES \
  __attribute__((target_clones("arch=haswell", "arch=x86-64-v4", "default")))
#define COLOC_GEMM_INLINE __attribute__((always_inline)) inline
#else
#define COLOC_GEMM_BATCH_CLONES
#define COLOC_GEMM_INLINE inline
#endif

template <int INNER>
COLOC_GEMM_INLINE void chunk_rows(const double* x, const double* w,
                                  const double* bias, double* out,
                                  std::size_t m, std::size_t cols) {
  for (std::size_t r = 0; r < m; ++r) {
    const double* xr = x + r * INNER;
    double* orow = out + r * cols;
    std::size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      double acc[8];
      for (int k = 0; k < 8; ++k) acc[k] = bias[c + k];
#pragma GCC unroll 8
      for (int i = 0; i < INNER; ++i) {
        const double xi = xr[i];
        const double* wr = w + static_cast<std::size_t>(i) * cols + c;
        for (int k = 0; k < 8; ++k) acc[k] += xi * wr[k];
      }
      for (int k = 0; k < 8; ++k) orow[c + k] = acc[k];
    }
    for (; c < cols; ++c) {
      double a = bias[c];
      for (int i = 0; i < INNER; ++i)
        a += xr[i] * w[static_cast<std::size_t>(i) * cols + c];
      orow[c] = a;
    }
  }
}

COLOC_GEMM_BATCH_CLONES
void gemm_chunk(const double* x, const double* w, const double* bias,
                double* out, std::size_t m, std::size_t inner,
                std::size_t cols) {
  switch (inner) {
    case 1: chunk_rows<1>(x, w, bias, out, m, cols); return;
    case 2: chunk_rows<2>(x, w, bias, out, m, cols); return;
    case 3: chunk_rows<3>(x, w, bias, out, m, cols); return;
    case 4: chunk_rows<4>(x, w, bias, out, m, cols); return;
    case 5: chunk_rows<5>(x, w, bias, out, m, cols); return;
    case 6: chunk_rows<6>(x, w, bias, out, m, cols); return;
    case 7: chunk_rows<7>(x, w, bias, out, m, cols); return;
    case 8: chunk_rows<8>(x, w, bias, out, m, cols); return;
    default: return;
  }
}

COLOC_GEMM_BATCH_CLONES
void gemm_stream(const double* x, const double* w, const double* bias,
                 double* out, std::size_t m, std::size_t inner,
                 std::size_t cols) {
  std::size_t r = 0;
  for (; r + 2 <= m; r += 2) {
    const double* xr0 = x + r * inner;
    const double* xr1 = xr0 + inner;
    double* o0 = out + r * cols;
    double* o1 = o0 + cols;
    std::memcpy(o0, bias, cols * sizeof(double));
    std::memcpy(o1, bias, cols * sizeof(double));
    std::size_t i = 0;
    for (; i + 2 <= inner; i += 2) {
      const double a0 = xr0[i];
      const double a1 = xr0[i + 1];
      const double b0 = xr1[i];
      const double b1 = xr1[i + 1];
      const double* w0 = w + i * cols;
      const double* w1 = w0 + cols;
      for (std::size_t c = 0; c < cols; ++c) {
        const double wc0 = w0[c];
        const double wc1 = w1[c];
        double p = o0[c];
        p += a0 * wc0;
        p += a1 * wc1;
        o0[c] = p;
        double q = o1[c];
        q += b0 * wc0;
        q += b1 * wc1;
        o1[c] = q;
      }
    }
    if (i < inner) {
      const double a0 = xr0[i];
      const double b0 = xr1[i];
      const double* w0 = w + i * cols;
      for (std::size_t c = 0; c < cols; ++c) {
        o0[c] += a0 * w0[c];
        o1[c] += b0 * w0[c];
      }
    }
  }
  if (r < m) {
    const double* xrow = x + r * inner;
    double* orow = out + r * cols;
    std::memcpy(orow, bias, cols * sizeof(double));
    std::size_t i = 0;
    for (; i + 2 <= inner; i += 2) {
      const double x0 = xrow[i];
      const double x1 = xrow[i + 1];
      const double* w0 = w + i * cols;
      const double* w1 = w0 + cols;
      for (std::size_t c = 0; c < cols; ++c) {
        double acc = orow[c];
        acc += x0 * w0[c];
        acc += x1 * w1[c];
        orow[c] = acc;
      }
    }
    if (i < inner) {
      const double x0 = xrow[i];
      const double* w0 = w + i * cols;
      for (std::size_t c = 0; c < cols; ++c) orow[c] += x0 * w0[c];
    }
  }
}

inline void gemm_bias_kernel(const double* x, const double* w,
                             const double* bias, double* out, std::size_t m,
                             std::size_t inner, std::size_t cols) {
  if (cols <= 32 && inner >= 1 && inner <= 8) {
    gemm_chunk(x, w, bias, out, m, inner, cols);
  } else {
    gemm_stream(x, w, bias, out, m, inner, cols);
  }
}

}  // namespace

void gemm_bias(const Matrix& x, const Matrix& w, std::span<const double> bias,
               Matrix& out) {
  COLOC_CHECK_MSG(x.cols() == w.rows(), "gemm_bias inner dimension mismatch");
  COLOC_CHECK_MSG(bias.size() == w.cols(), "gemm_bias bias width mismatch");
  const std::size_t m = x.rows();
  const std::size_t inner = x.cols();
  const std::size_t cols = w.cols();
  out.resize(m, cols);
  gemm_bias_kernel(x.data().data(), w.data().data(), bias.data(),
                   out.data().data(), m, inner, cols);
}

}  // namespace coloc::linalg
