// Cholesky factorization for symmetric positive-definite systems.
//
// Used for normal-equation solves where speed matters more than the extra
// digits QR buys, and by tests as an independent cross-check of QR results.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace coloc::linalg {

/// Lower-triangular Cholesky factor of an SPD matrix: A = L L^T.
/// Throws coloc::runtime_error if the matrix is not positive definite.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a);

  std::size_t size() const { return l_.rows(); }
  const Matrix& l_factor() const { return l_; }

  /// Solves A x = b via forward + backward substitution.
  Vector solve(std::span<const double> b) const;

  /// log(det(A)) = 2 * sum(log(L_ii)); handy for model-evidence diagnostics.
  double log_determinant() const;

 private:
  Matrix l_;
};

/// Solves the regularized normal equations (A^T A + lambda I) x = A^T b.
Vector normal_equations_solve(const Matrix& a, std::span<const double> b,
                              double lambda = 0.0);

}  // namespace coloc::linalg
