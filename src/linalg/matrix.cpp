#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/thread_pool.hpp"

namespace coloc::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    COLOC_CHECK_MSG(row.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    COLOC_CHECK_MSG(rows[r].size() == m.cols_, "ragged rows for Matrix");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  COLOC_CHECK_MSG(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  COLOC_CHECK_MSG(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

Vector Matrix::col(std::size_t c) const {
  COLOC_CHECK_MSG(c < cols_, "column index out of range");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  COLOC_CHECK_MSG(c < cols_, "column index out of range");
  COLOC_CHECK_MSG(values.size() == rows_, "column length mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  COLOC_CHECK_MSG(same_shape(other), "shape mismatch in Matrix +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  COLOC_CHECK_MSG(same_shape(other), "shape mismatch in Matrix -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

Matrix matmul_naive(const Matrix& a, const Matrix& b) {
  COLOC_CHECK_MSG(a.cols() == b.rows(), "inner dimensions must match");
  Matrix c(a.rows(), b.cols(), 0.0);
  // i-k-j loop order keeps the innermost accesses sequential in b and c.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

namespace {

// L1-friendly strip of the inner dimension: 64 doubles of B per k-strip
// stay resident while a row block of C accumulates.
constexpr std::size_t kTileK = 64;
// Row-block granularity of the thread fan-out.
constexpr std::size_t kRowsPerTask = 32;
// Products below ~2 Mflop finish faster serially than a fan-out costs.
constexpr std::size_t kParallelFlops = std::size_t{1} << 21;

// Shared decision for the blocked kernels: worth fanning out, and safe to
// (a blocking parallel_for from a pool worker would deadlock on itself).
bool use_pool(std::size_t flops) {
  return flops >= kParallelFlops && global_pool().size() > 1 &&
         !on_worker_thread();
}

// Runs a kernel over [0, rows) in kRowsPerTask blocks, threaded or not.
template <typename RowRangeFn>
void for_row_blocks(std::size_t rows, std::size_t flops,
                    const RowRangeFn& body) {
  if (!use_pool(flops)) {
    body(std::size_t{0}, rows);
    return;
  }
  const std::size_t tasks = (rows + kRowsPerTask - 1) / kRowsPerTask;
  parallel_for(
      global_pool(), tasks,
      [&](std::size_t t) {
        const std::size_t begin = t * kRowsPerTask;
        body(begin, std::min(rows, begin + kRowsPerTask));
      },
      1);
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  COLOC_CHECK_MSG(a.cols() == b.rows(), "inner dimensions must match");
  Matrix c(a.rows(), b.cols(), 0.0);
  const std::size_t inner = a.cols();
  const std::size_t width = b.cols();
  for_row_blocks(
      a.rows(), a.rows() * inner * width,
      [&](std::size_t row_begin, std::size_t row_end) {
        // k-strips ascend, and k ascends within a strip, so every C(i,j)
        // accumulates its terms in exactly matmul_naive's order; the
        // aik == 0 skip drops the same terms the naive loop drops.
        for (std::size_t kk = 0; kk < inner; kk += kTileK) {
          const std::size_t k_end = std::min(inner, kk + kTileK);
          for (std::size_t i = row_begin; i < row_end; ++i) {
            auto crow = c.row(i);
            for (std::size_t k = kk; k < k_end; ++k) {
              const double aik = a(i, k);
              if (aik == 0.0) continue;
              const auto brow = b.row(k);
              for (std::size_t j = 0; j < width; ++j)
                crow[j] += aik * brow[j];
            }
          }
        }
      });
  return c;
}

Matrix matmul_transposed(const Matrix& a, const Matrix& b) {
  COLOC_CHECK_MSG(a.cols() == b.cols(),
                  "matmul_transposed needs equal column counts");
  Matrix c(a.rows(), b.rows(), 0.0);
  for_row_blocks(a.rows(), a.rows() * a.cols() * b.rows(),
                 [&](std::size_t row_begin, std::size_t row_end) {
                   for (std::size_t i = row_begin; i < row_end; ++i) {
                     auto crow = c.row(i);
                     const auto arow = a.row(i);
                     for (std::size_t j = 0; j < b.rows(); ++j)
                       crow[j] = dot(arow, b.row(j));
                   }
                 });
  return c;
}

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  COLOC_CHECK_MSG(a.cols() == x.size(), "gemv dimension mismatch");
  COLOC_CHECK_MSG(y.size() == a.rows(), "gemv output size mismatch");
  const std::size_t n = a.cols();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row(i).data();
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (std::size_t k = 0; k < n4; k += 4) {
      s0 += row[k] * x[k];
      s1 += row[k + 1] * x[k + 1];
      s2 += row[k + 2] * x[k + 2];
      s3 += row[k + 3] * x[k + 3];
    }
    double s = (s0 + s1) + (s2 + s3);
    for (std::size_t k = n4; k < n; ++k) s += row[k] * x[k];
    y[i] = s;
  }
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  COLOC_CHECK_MSG(a.cols() == x.size(), "matvec dimension mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) y[i] = dot(a.row(i), x);
  return y;
}

Vector matvec_transposed(const Matrix& a, std::span<const double> x) {
  COLOC_CHECK_MSG(a.rows() == x.size(), "matvec^T dimension mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) axpy(x[i], a.row(i), y);
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  COLOC_CHECK_MSG(a.size() == b.size(), "dot length mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double s, std::span<const double> b, std::span<double> a) {
  COLOC_CHECK_MSG(a.size() == b.size(), "axpy length mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

double frobenius_distance(const Matrix& a, const Matrix& b) {
  COLOC_CHECK_MSG(a.same_shape(b), "shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace coloc::linalg
