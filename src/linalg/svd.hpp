// Singular value decomposition via the one-sided Jacobi method.
//
// Used for minimum-norm least squares on rank-deficient systems (the exact
// behaviour of the SciPy solver the paper used) and as an independent
// cross-check of the QR and PCA paths in tests. One-sided Jacobi is slow
// but extremely accurate and simple — ideal at this library's scales
// (design matrices with at most a few thousand rows and ~10 columns).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace coloc::linalg {

/// Thin SVD of an m x n matrix (m >= n): A = U * diag(s) * V^T with
/// U (m x n) column-orthonormal, V (n x n) orthogonal, s descending >= 0.
struct SvdResult {
  Matrix u;
  Vector singular_values;
  Matrix v;

  /// Numerical rank: singular values above tol * s_max.
  std::size_t rank(double tol = 1e-12) const;
};

SvdResult svd(const Matrix& a, int max_sweeps = 64, double tol = 1e-14);

/// Minimum-norm least squares via the pseudo-inverse: works on
/// rank-deficient systems where QR-based solves throw. Singular values
/// below rcond * s_max are treated as zero.
Vector svd_least_squares(const Matrix& a, std::span<const double> b,
                         double rcond = 1e-12);

}  // namespace coloc::linalg
