// Built with -fno-trapping-math -ffp-contract=off (see
// linalg/CMakeLists.txt): the first lets the saturation clamp inside
// fast_tanh if-convert so the loop vectorizes; the second keeps every
// clone's arithmetic contraction-free, so wider clones differ from the
// scalar fast_tanh only in lane count — never in rounding.
#include "linalg/fast_math.hpp"

namespace coloc::linalg {

// Function multi-versioning: the loader picks the widest clone the CPU
// supports (AVX2 / AVX-512 on x86-64 servers, baseline SSE2 otherwise).
// Results are bit-identical across clones because contraction is off.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__)
#define COLOC_VECTOR_TANH_CLONES \
  __attribute__((target_clones("arch=haswell", "arch=x86-64-v4", "default")))
#else
#define COLOC_VECTOR_TANH_CLONES
#endif

COLOC_VECTOR_TANH_CLONES
void vector_tanh(double* z, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) z[i] = fast_tanh(z[i]);
}

}  // namespace coloc::linalg
