// Regenerates Figure 3: NRMSE of all twelve models on the 6-core
// Xeon E5649.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());
  bench::MachineExperiment experiment(sim::xeon_e5649(), config);
  experiment.print_figure(
      "Figure 3: NRMSE vs feature set, 6-core Xeon E5649",
      core::Metric::kNrmse);
  return 0;
}
