// Ablation studies for the design choices called out in DESIGN.md §5:
//   1. shared-LLC occupancy fixed point vs static equal partition
//   2. DRAM queueing vs constant memory latency
//   3. measurement-noise sweep (how noise floors model accuracy)
//   4. NN hidden-width sweep around the paper's 10-20 range
//   5. uniform structured training sweep vs random subsampling of the
//      co-location space (the paper argues uniform coverage travels better)
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "ml/metrics.hpp"

using namespace coloc;

namespace {

// Contention-mechanism ablations: how much of canneal's degradation under
// 5x cg comes from capacity sharing vs queueing.
void contention_ablation(const bench::HarnessConfig& config) {
  sim::AppMrcLibrary library;
  const auto apps = sim::benchmark_suite();
  library.profile_all(apps);

  TextTable table("Ablation: contention mechanisms (canneal + 5x cg, "
                  "6-core Xeon E5649, P0)");
  table.set_columns({"model variant", "normalized exec time"});
  const sim::ApplicationSpec canneal = sim::find_application("canneal");
  const sim::ApplicationSpec cg = sim::find_application("cg");

  struct Variant {
    const char* name;
    sim::ContentionOptions options;
  };
  sim::ContentionOptions base;
  sim::ContentionOptions static_part = base;
  static_part.static_equal_partition = true;
  sim::ContentionOptions no_queue = base;
  no_queue.disable_queueing = true;
  sim::ContentionOptions neither = static_part;
  neither.disable_queueing = true;
  const Variant variants[] = {
      {"full model (occupancy + queueing)", base},
      {"static equal LLC partition", static_part},
      {"no DRAM queueing", no_queue},
      {"neither mechanism", neither},
  };
  for (const auto& variant : variants) {
    sim::MeasurementOptions options;
    options.seed = config.seed;
    options.time_noise_sigma = 0.0;
    options.counter_noise_sigma = 0.0;
    options.contention = variant.options;
    sim::Simulator simulator(sim::xeon_e5649(), &library, options);
    const double alone =
        simulator.run_alone(canneal, 0).true_execution_time_s;
    const std::vector<sim::ApplicationSpec> coapps(5, cg);
    const double crowded =
        simulator.run_colocated(canneal, coapps, 0).true_execution_time_s;
    table.add_row({variant.name, TextTable::num(crowded / alone, 3)});
  }
  table.print(std::cout);
}

// How measurement noise floors the best model's achievable accuracy.
void noise_ablation(const bench::HarnessConfig& config) {
  TextTable table("Ablation: measurement-noise sweep (NN-F test MPE, "
                  "6-core)");
  table.set_columns({"time noise sigma", "NN-F test MPE (%)"});
  sim::AppMrcLibrary library;
  core::CampaignConfig campaign_config =
      core::CampaignConfig::paper_defaults();
  library.profile_all(campaign_config.targets);
  for (double sigma : {0.0, 0.005, 0.01, 0.03}) {
    sim::MeasurementOptions options;
    options.seed = config.seed;
    options.time_noise_sigma = sigma;
    sim::Simulator simulator(sim::xeon_e5649(), &library, options);
    const core::CampaignResult campaign =
        core::run_campaign(simulator, campaign_config);
    core::EvaluationConfig eval = config.evaluation();
    eval.validation.partitions = std::max<std::size_t>(
        4, config.partitions / 2);
    const auto factory = core::make_model_factory(
        {core::ModelTechnique::kNeuralNetwork, core::FeatureSet::kF},
        eval.zoo, 11);
    const ml::ValidationResult r = ml::repeated_subsampling_validation(
        campaign.dataset,
        core::feature_set_columns(core::FeatureSet::kF), factory,
        eval.validation);
    table.add_row({TextTable::num(sigma, 3), TextTable::num(r.test_mpe, 2)});
  }
  table.print(std::cout);
}

// Hidden-width sweep around the paper's 10-20 node rule.
void hidden_width_ablation(const bench::HarnessConfig& config,
                           const core::CampaignResult& campaign) {
  TextTable table("Ablation: NN hidden-width sweep (set F, 6-core)");
  table.set_columns({"hidden units", "test MPE (%)", "test NRMSE (%)"});
  for (std::size_t hidden : {4u, 10u, 20u, 40u}) {
    core::EvaluationConfig eval = config.evaluation();
    eval.validation.partitions =
        std::max<std::size_t>(4, config.partitions / 2);
    eval.zoo.fixed_hidden_units = true;
    eval.zoo.mlp.hidden_units = hidden;
    const auto factory = core::make_model_factory(
        {core::ModelTechnique::kNeuralNetwork, core::FeatureSet::kF},
        eval.zoo, hidden);
    const ml::ValidationResult r = ml::repeated_subsampling_validation(
        campaign.dataset,
        core::feature_set_columns(core::FeatureSet::kF), factory,
        eval.validation);
    table.add_row({TextTable::num(hidden), TextTable::num(r.test_mpe, 2),
                   TextTable::num(r.test_nrmse, 2)});
  }
  table.print(std::cout);
}

// Training-set size: uniform structured sweep vs random subsets of it.
// The uniform sweep is the paper's design point; random subsampling of the
// same budget loses coverage of the co-location space.
void sampling_ablation(const bench::HarnessConfig& config,
                       const core::CampaignResult& campaign) {
  TextTable table(
      "Ablation: structured-uniform vs random training coverage (NN-F, "
      "6-core)");
  table.set_columns({"training rows", "strategy", "test MPE (%)"});
  const auto& columns = core::feature_set_columns(core::FeatureSet::kF);
  core::EvaluationConfig eval = config.evaluation();
  const auto factory = core::make_model_factory(
      {core::ModelTechnique::kNeuralNetwork, core::FeatureSet::kF},
      eval.zoo, 17);

  const std::size_t n = campaign.dataset.num_rows();
  Rng rng(config.seed);
  for (double fraction : {0.25, 0.5, 1.0}) {
    const std::size_t k = static_cast<std::size_t>(
        fraction * static_cast<double>(n));
    for (const bool structured : {true, false}) {
      // Structured: every ceil(1/fraction)-th row of the sweep (keeps the
      // uniform cover). Random: k rows drawn at random.
      std::vector<std::size_t> rows;
      if (structured) {
        const double step = static_cast<double>(n) / static_cast<double>(k);
        for (double pos = 0.0; pos < static_cast<double>(n); pos += step)
          rows.push_back(static_cast<std::size_t>(pos));
      } else {
        rows = rng.sample_without_replacement(n, k);
      }
      const ml::Dataset subset = campaign.dataset.subset(rows);
      ml::ValidationOptions validation = eval.validation;
      validation.partitions =
          std::max<std::size_t>(4, config.partitions / 2);
      const ml::ValidationResult r = ml::repeated_subsampling_validation(
          subset, columns, factory, validation);
      table.add_row({TextTable::num(rows.size()),
                     structured ? "structured-uniform" : "random",
                     TextTable::num(r.test_mpe, 2)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());

  contention_ablation(config);

  bench::MachineExperiment experiment(sim::xeon_e5649(), config);
  hidden_width_ablation(config, experiment.campaign());
  sampling_ablation(config, experiment.campaign());
  noise_ablation(config);
  return 0;
}
