// Regenerates Table V: the training-data collection parameters, and
// reports the resulting campaign sizes (number of measured co-location
// cells per machine) exactly as the nested loops of Section IV-B3 imply.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());

  const std::vector<sim::MachineConfig> machines = {sim::xeon_e5649(),
                                                    sim::xeon_e5_2697v2()};
  const core::CampaignConfig campaign_config =
      core::CampaignConfig::paper_defaults();
  core::render_table5(machines, campaign_config).print(std::cout);

  TextTable sizes("Campaign sizes implied by the Table V sweep");
  sizes.set_columns({"processor", "P-states", "targets", "co-apps",
                     "co-location counts", "total measurements"});
  sim::AppMrcLibrary library;
  library.profile_all(campaign_config.targets);
  for (const auto& machine : machines) {
    sim::Simulator simulator(machine, &library,
                             sim::MeasurementOptions{.seed = config.seed});
    const core::CampaignResult result =
        core::run_campaign(simulator, campaign_config);
    sizes.add_row({machine.name, TextTable::num(machine.pstates.size()),
                   TextTable::num(campaign_config.targets.size()),
                   TextTable::num(campaign_config.coapps.size()),
                   "1-" + std::to_string(machine.cores - 1),
                   TextTable::num(result.total_runs)});
  }
  sizes.print(std::cout);
  std::printf(
      "Each measurement profiles only the single target application —\n"
      "counters are read once per app per machine (Section IV-B3).\n");
  return 0;
}
