// Performance-trajectory harness for the PR 4 fast paths. Times the three
// pipeline stages the optimization targeted — trace profiling, the Table V
// collection campaign, and the paper's 100-partition set-F MLP validation —
// and races the batched MLP training/inference path against an in-file
// replica of the pre-optimization implementation (rowwise std::tanh
// loss/gradient, per-call-allocating predict, serial restarts) driven
// through the same repeated_subsampling_validation protocol.
//
// Writes a machine-readable BENCH_pipeline.json (override with --out=FILE)
// recording the stage timings, the validation speedup, and a set of
// numerical-equivalence gates. The exit status reflects ONLY the
// equivalence gates — never timing — so CI can run this on noisy shared
// runners without flaking:
//   gate matmul_vs_naive          tiled GEMM == reference i-k-j loop
//   gate batched_loss_vs_reference batched loss/grad == rowwise oracle
//   gate fast_vs_legacy_mpe/nrmse  validation metrics match the replica
//   gate solve_cache_bit_identical cached contention solve == cold solve
//   gate campaign_parallel_bit_identical  parallel campaign == serial sweep
//   gate zoo_parallel_bit_identical       parallel 12-model zoo == serial
//   gate zoo_warm_start_bit_identical     zoo reloaded from the store
//                                         bundle == freshly trained zoo
//
// The warm-start arm times training the full 12-model zoo cold against
// saving it to a checksummed store bundle (--zoo-out, default
// BENCH_zoo_bundle) and loading it back (--zoo-in overrides the load
// path). At --fault-rate 0 the reloaded models must serialize
// byte-identically to the trained ones.
//
// The campaign and model-zoo stages are additionally timed serial vs.
// parallel (--jobs / COLOC_JOBS workers) and the speedups reported; on a
// single-core host both arms time about the same, by design — the gates
// still verify the orchestration is byte-equivalent.
//
// Run the headline number (Release build):
//   ./build/bench/bench_perf_pipeline --partitions=100 --jobs=0
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/zoo_artifacts.hpp"
#include "linalg/matrix.hpp"
#include "ml/dataset.hpp"
#include "ml/mlp.hpp"
#include "ml/scg.hpp"
#include "ml/serialization.hpp"
#include "ml/validation.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/stack_distance.hpp"
#include "sim/trace.hpp"

namespace {

using namespace coloc;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One numerical-equivalence check: `value` must stay <= `limit`.
struct Gate {
  const char* name;
  double value = 0.0;
  double limit = 0.0;
  bool pass() const { return value <= limit; }
};

// ---------------------------------------------------------------------------
// Pre-optimization MLP replica. This is the seed implementation the batched
// path replaced: std::tanh through a row-at-a-time forward/backward pass,
// predict() allocating a fresh standardization buffer per call, and the
// default per-row predict_all loop. Kept here (not in src/) so the library
// carries exactly one tanh and one training path; the replica exists only
// to give the speedup measurement an honest baseline.
// ---------------------------------------------------------------------------

class LegacyMlp final : public ml::Regressor {
 public:
  static std::unique_ptr<LegacyMlp> fit(const linalg::Matrix& x,
                                        std::span<const double> y,
                                        const ml::MlpOptions& options) {
    linalg::Matrix design = x;
    ml::Standardizer scaler = ml::Standardizer::fit(design);
    scaler.transform(design);
    ml::TargetScaler target = ml::TargetScaler::fit(y);
    const std::vector<double> z = target.transform_all(y);

    auto model = std::unique_ptr<LegacyMlp>(new LegacyMlp);
    model->inputs_ = x.cols();
    model->hidden_ = options.hidden_units;
    model->scaler_ = std::move(scaler);
    model->target_ = std::move(target);
    model->params_.assign(model->num_parameters(), 0.0);

    Rng rng(options.seed);
    model->initialize(rng);

    ml::ScgObjective objective{
        .dimension = model->num_parameters(),
        .value_and_gradient =
            [&](std::span<const double> p, std::span<double> g) {
              std::copy(p.begin(), p.end(), model->params_.begin());
              return model->loss_and_gradient(design, z,
                                              options.weight_decay, g);
            },
    };
    std::vector<double> p = model->params_;
    ml::ScgOptions scg_options;
    scg_options.max_iterations = options.max_iterations;
    scg_options.gradient_tolerance = options.gradient_tolerance;
    const ml::ScgResult res = ml::scg_minimize(objective, p, scg_options);
    model->params_.assign(res.solution.begin(), res.solution.end());
    return model;
  }

  double predict(std::span<const double> features) const override {
    // Deliberately the pre-PR behaviour: heap-allocate the standardized
    // row on every call.
    std::vector<double> row(features.begin(), features.end());
    scaler_.transform_row(row);
    return target_.inverse(forward(row));
  }

  std::string describe() const override { return "LegacyMlp"; }

 private:
  LegacyMlp() = default;

  std::size_t num_parameters() const {
    return hidden_ * inputs_ + 2 * hidden_ + 1;
  }
  std::size_t b1_offset() const { return hidden_ * inputs_; }
  std::size_t w2_offset() const { return hidden_ * inputs_ + hidden_; }
  std::size_t b2_offset() const { return hidden_ * inputs_ + 2 * hidden_; }

  void initialize(Rng& rng) {
    const double w1_scale = std::sqrt(1.0 / static_cast<double>(inputs_));
    const double w2_scale = std::sqrt(1.0 / static_cast<double>(hidden_));
    for (std::size_t i = 0; i < hidden_ * inputs_; ++i)
      params_[i] = rng.normal(0.0, w1_scale);
    for (std::size_t i = 0; i < hidden_; ++i)
      params_[w2_offset() + i] = rng.normal(0.0, w2_scale);
  }

  double forward(std::span<const double> x) const {
    const double* w1 = params_.data();
    const double* b1 = params_.data() + b1_offset();
    const double* w2 = params_.data() + w2_offset();
    double out = params_[b2_offset()];
    for (std::size_t h = 0; h < hidden_; ++h) {
      double a = b1[h];
      const double* wrow = w1 + h * inputs_;
      for (std::size_t i = 0; i < inputs_; ++i) a += wrow[i] * x[i];
      out += w2[h] * std::tanh(a);
    }
    return out;
  }

  double loss_and_gradient(const linalg::Matrix& x, std::span<const double> y,
                           double weight_decay,
                           std::span<double> grad) const {
    const std::size_t m = x.rows();
    const double* w1 = params_.data();
    const double* b1 = params_.data() + b1_offset();
    const double* w2 = params_.data() + w2_offset();
    double* g_w1 = grad.data();
    double* g_b1 = grad.data() + b1_offset();
    double* g_w2 = grad.data() + w2_offset();
    double& g_b2 = grad[b2_offset()];
    std::fill(grad.begin(), grad.end(), 0.0);

    std::vector<double> act(hidden_);
    double loss = 0.0;
    const double inv_m = 1.0 / static_cast<double>(m);
    for (std::size_t r = 0; r < m; ++r) {
      const auto row = x.row(r);
      double out = params_[b2_offset()];
      for (std::size_t h = 0; h < hidden_; ++h) {
        double a = b1[h];
        const double* wrow = w1 + h * inputs_;
        for (std::size_t i = 0; i < inputs_; ++i) a += wrow[i] * row[i];
        act[h] = std::tanh(a);
        out += w2[h] * act[h];
      }
      const double err = out - y[r];
      loss += 0.5 * err * err;
      const double d_out = err * inv_m;
      g_b2 += d_out;
      for (std::size_t h = 0; h < hidden_; ++h) {
        g_w2[h] += d_out * act[h];
        const double d_a = d_out * w2[h] * (1.0 - act[h] * act[h]);
        g_b1[h] += d_a;
        double* grow = g_w1 + h * inputs_;
        for (std::size_t i = 0; i < inputs_; ++i) grow[i] += d_a * row[i];
      }
    }
    loss *= inv_m;
    if (weight_decay > 0.0) {
      double wnorm = 0.0;
      for (std::size_t i = 0; i < params_.size(); ++i) {
        wnorm += params_[i] * params_[i];
        grad[i] += weight_decay * params_[i];
      }
      loss += 0.5 * weight_decay * wnorm;
    }
    return loss;
  }

  std::size_t inputs_ = 0;
  std::size_t hidden_ = 0;
  std::vector<double> params_;
  ml::Standardizer scaler_;
  ml::TargetScaler target_;
};

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  linalg::Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-2.0, 2.0);
  return m;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void json_gate(std::ofstream& os, const Gate& g, bool last) {
  os << "    {\"name\": \"" << g.name << "\", \"value\": " << g.value
     << ", \"limit\": " << g.limit << ", \"pass\": "
     << (g.pass() ? "true" : "false") << "}" << (last ? "\n" : ",\n");
}

// ---------------------------------------------------------------------------
// Attribution capture. Each timed arm (campaign serial/parallel, zoo
// serial/parallel) gets its pool accounting read from the per-stage gauges
// the orchestrators export, its queue-wait/commit-hold histogram activity
// isolated as a before/after snapshot delta (the histograms are cumulative
// across the whole process), and — when tracing is live — a critical-path
// pass over only the spans recorded inside the arm's time window, so the
// two same-named stage roots (serial arm, parallel arm) never collide.
// ---------------------------------------------------------------------------

/// Cumulative-histogram activity attributable to one arm.
struct HistDelta {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p99 = 0.0;
};

HistDelta hist_delta(const obs::MetricsSnapshot& before,
                     const obs::MetricsSnapshot& after,
                     const std::string& name) {
  HistDelta d;
  const obs::MetricSample* a = after.find(name);
  if (a == nullptr) return d;
  const obs::MetricSample* b = before.find(name);
  std::vector<std::uint64_t> buckets = a->histogram_buckets;
  d.count = a->histogram_count;
  d.sum = a->histogram_sum;
  if (b != nullptr) {
    d.count -= b->histogram_count;
    d.sum -= b->histogram_sum;
    for (std::size_t i = 0;
         i < buckets.size() && i < b->histogram_buckets.size(); ++i)
      buckets[i] -= b->histogram_buckets[i];
  }
  d.p99 = obs::Histogram::quantile_from_counts(buckets, 0.99);
  return d;
}

/// Everything the attribution report needs about one timed arm.
struct ArmAttribution {
  double wall_s = 0.0;
  double busy_s = 0.0;
  double idle_s = 0.0;
  double workers = 0.0;
  double utilization = 0.0;
  HistDelta queue_wait;
  HistDelta commit_hold;
  obs::CriticalPathResult critical_path;
};

/// Critical path over only the spans that started inside [from_ns, to_ns].
obs::CriticalPathResult window_critical_path(std::uint64_t from_ns,
                                             std::uint64_t to_ns,
                                             const std::string& root) {
  const obs::TraceSink* sink = obs::TraceSink::current();
  if (sink == nullptr) return {};
  std::vector<obs::TraceEvent> window;
  for (obs::TraceEvent& e : sink->events()) {
    if (e.start_ns >= from_ns && e.start_ns <= to_ns)
      window.push_back(std::move(e));
  }
  return obs::CriticalPath::analyze(obs::SpanGraph::build(window), root);
}

/// Reads the arm's stage pool gauges (exported at the end of the arm) and
/// histogram deltas vs `before`. `stage` is the gauge label the
/// orchestrator exported ("campaign" or "validation").
ArmAttribution capture_arm(const char* stage, double wall_s,
                           const obs::MetricsSnapshot& before,
                           std::uint64_t from_ns, std::uint64_t to_ns,
                           const std::string& root_span) {
  auto& registry = obs::Registry::global();
  const obs::Labels labels = {{"stage", stage}};
  ArmAttribution arm;
  arm.wall_s = wall_s;
  arm.busy_s = registry.gauge("stage_pool_busy_seconds", labels).value();
  arm.idle_s = registry.gauge("stage_pool_idle_seconds", labels).value();
  arm.workers = registry.gauge("stage_pool_workers", labels).value();
  arm.utilization = registry.gauge("stage_pool_utilization", labels).value();
  const obs::MetricsSnapshot after = registry.snapshot();
  arm.queue_wait = hist_delta(before, after, "pool_queue_wait_seconds");
  arm.commit_hold = hist_delta(before, after, "pool_commit_hold_seconds");
  arm.critical_path = window_critical_path(from_ns, to_ns, root_span);
  return arm;
}

/// The serial-vs-parallel gap decomposition for one stage. All terms are
/// worker-seconds so they add up against gap = jobs*wall_par - wall_serial:
///   idle          workers parked while the arm's pool was alive
///   exec_overhead pool busy time in excess of the serial arm's wall
///                 (per-task span/bookkeeping cost; can be slightly
///                 negative when the parallel arm does less in-pool work)
///   serial_section worker capacity lost while no pool existed
///                 (setup, baselines, checkpoint flushes, reduction)
/// The three are independently sourced (pool accounting vs wall clocks),
/// so attributed_fraction ~ 1 checks the bookkeeping is consistent.
struct GapAttribution {
  double gap_worker_s = 0.0;
  double idle_s = 0.0;
  double exec_overhead_s = 0.0;
  double serial_section_s = 0.0;
  double attributed_fraction = 0.0;
};

GapAttribution attribute_gap(std::size_t jobs, double wall_serial_s,
                             const ArmAttribution& parallel) {
  GapAttribution g;
  const double capacity = static_cast<double>(jobs) * parallel.wall_s;
  g.gap_worker_s = capacity - wall_serial_s;
  g.idle_s = parallel.idle_s;
  g.exec_overhead_s = parallel.busy_s - wall_serial_s;
  g.serial_section_s = capacity - parallel.busy_s - parallel.idle_s;
  const double attributed =
      g.idle_s + g.exec_overhead_s + g.serial_section_s;
  g.attributed_fraction =
      std::abs(g.gap_worker_s) > 1e-12 ? attributed / g.gap_worker_s : 1.0;
  return g;
}

void json_arm(std::ofstream& os, const char* key, std::size_t jobs,
              double wall_serial_s, const ArmAttribution& serial,
              const ArmAttribution& parallel, bool last) {
  const GapAttribution gap = attribute_gap(jobs, wall_serial_s, parallel);
  const obs::CriticalPathResult& cp = parallel.critical_path;
  os << "    \"" << key << "\": {\n"
     << "      \"wall_serial_s\": " << serial.wall_s << ",\n"
     << "      \"wall_parallel_s\": " << parallel.wall_s << ",\n"
     << "      \"gap_worker_seconds\": " << gap.gap_worker_s << ",\n"
     << "      \"idle_seconds\": " << gap.idle_s << ",\n"
     << "      \"exec_overhead_seconds\": " << gap.exec_overhead_s << ",\n"
     << "      \"serial_section_seconds\": " << gap.serial_section_s << ",\n"
     << "      \"attributed_fraction\": " << gap.attributed_fraction << ",\n"
     << "      \"mean_worker_utilization\": " << parallel.utilization << ",\n"
     << "      \"pool_workers\": " << parallel.workers << ",\n"
     << "      \"pool_busy_seconds\": " << parallel.busy_s << ",\n"
     << "      \"queue_wait\": {\"sum_s\": " << parallel.queue_wait.sum
     << ", \"p99_s\": " << parallel.queue_wait.p99 << ", \"count\": "
     << parallel.queue_wait.count << "},\n"
     << "      \"commit_hold\": {\"sum_s\": " << parallel.commit_hold.sum
     << ", \"count\": " << parallel.commit_hold.count << "},\n"
     << "      \"critical_path_seconds\": " << cp.critical_path_seconds
     << ",\n"
     << "      \"parallel_overhead_seconds\": "
     << cp.parallel_overhead_seconds << ",\n"
     << "      \"critical_path_found\": " << (cp.found ? "true" : "false")
     << ",\n"
     << "      \"critical_path_coverage\": " << cp.coverage << ",\n"
     << "      \"critical_chain_length\": " << cp.chain_length << "\n"
     << "    }" << (last ? "\n" : ",\n");
}

void print_arm(const char* name, std::size_t jobs, double wall_serial_s,
               const ArmAttribution& parallel) {
  const GapAttribution gap = attribute_gap(jobs, wall_serial_s, parallel);
  std::printf(
      "attribution (%s): gap %.3f worker-s = idle %.3f + exec-overhead "
      "%.3f + serial-section %.3f (%.0f%% attributed)\n",
      name, gap.gap_worker_s, gap.idle_s, gap.exec_overhead_s,
      gap.serial_section_s, 100.0 * gap.attributed_fraction);
  if (parallel.critical_path.found) {
    std::printf(
      "  critical path      : %8.3f s of %.3f s wall (chain %zu/%zu "
      "tasks); queue-wait p99 %.2g s, commit-hold sum %.2g s\n",
      parallel.critical_path.critical_path_seconds,
      parallel.critical_path.wall_seconds,
      parallel.critical_path.chain_length, parallel.critical_path.tasks,
      parallel.queue_wait.p99, parallel.commit_hold.sum);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());
  const std::string out_path = args.get("out", "BENCH_pipeline.json");

  // The attribution pass below walks the span graph; keep tracing live
  // even when the run was started without --trace-out/--bundle-out. The
  // local sink is destroyed before `session` (reverse declaration order),
  // by which point every span has closed.
  std::unique_ptr<obs::TraceSink> local_sink;
  if (obs::TraceSink::current() == nullptr) {
    local_sink = std::make_unique<obs::TraceSink>();
    local_sink->install();
  }

  // --- Stage 1: trace profiling (stack-distance pass over one app trace).
  const sim::ApplicationSpec canneal = sim::find_application("canneal");
  const std::size_t trace_len = config.quick ? 200'000 : 2'000'000;
  sim::TraceGenerator generator(canneal.trace, config.seed);
  const std::vector<sim::LineAddress> trace = generator.generate(trace_len);
  auto t0 = std::chrono::steady_clock::now();
  const sim::StackDistanceProfiler profiler = sim::profile_trace(trace);
  const double profile_s = seconds_since(t0);
  std::printf("trace profiling      : %8.3f s  (%zu refs, %llu cold)\n",
              profile_s, trace.size(),
              static_cast<unsigned long long>(profiler.cold_misses()));

  // --- Stage 2: collection campaign (Table V sweep on the 6-core Xeon),
  // serial vs. task-parallel. Each arm gets a fresh simulator so neither
  // benefits from the other's contention-solve cache; the sequenced
  // collector guarantees the two datasets are byte-identical.
  const std::size_t jobs = config.jobs != 0 ? config.jobs : configured_jobs();
  const sim::MachineConfig machine = sim::xeon_e5649();
  core::CampaignConfig campaign_config = core::CampaignConfig::paper_defaults();
  if (config.quick)
    campaign_config.pstate_indices = {0, machine.pstates.size() - 1};

  sim::MeasurementOptions measurement;
  measurement.seed = config.seed;

  campaign_config.jobs = 1;
  sim::AppMrcLibrary serial_library;
  sim::Simulator serial_testbed(machine, &serial_library, measurement);
  serial_library.profile_all(campaign_config.targets);
  obs::MetricsSnapshot pre_arm = obs::Registry::global().snapshot();
  std::uint64_t arm_start_ns = obs::trace_now_ns();
  t0 = std::chrono::steady_clock::now();
  const core::CampaignResult campaign_serial =
      core::run_campaign(serial_testbed, campaign_config);
  const double campaign_serial_s = seconds_since(t0);
  const ArmAttribution campaign_serial_attr =
      capture_arm("campaign", campaign_serial_s, pre_arm, arm_start_ns,
                  obs::trace_now_ns(), "campaign");
  std::printf("campaign (serial)    : %8.3f s  (%zu rows)\n",
              campaign_serial_s, campaign_serial.dataset.num_rows());

  campaign_config.jobs = jobs;
  sim::AppMrcLibrary library;
  sim::Simulator testbed(machine, &library, measurement);
  library.profile_all(campaign_config.targets);
  pre_arm = obs::Registry::global().snapshot();
  arm_start_ns = obs::trace_now_ns();
  t0 = std::chrono::steady_clock::now();
  const core::CampaignResult campaign =
      core::run_campaign(testbed, campaign_config);
  const double campaign_s = seconds_since(t0);
  const ArmAttribution campaign_parallel_attr =
      capture_arm("campaign", campaign_s, pre_arm, arm_start_ns,
                  obs::trace_now_ns(), "campaign");
  const double campaign_speedup =
      campaign_s > 0.0 ? campaign_serial_s / campaign_s : 0.0;
  std::printf("campaign (jobs=%zu)   : %8.3f s  (%.2fx vs serial)\n", jobs,
              campaign_s, campaign_speedup);

  bool campaign_identical =
      campaign.dataset.num_rows() == campaign_serial.dataset.num_rows();
  for (std::size_t r = 0; campaign_identical &&
                          r < campaign.dataset.num_rows(); ++r) {
    campaign_identical =
        bitwise_equal(campaign.dataset.target(r),
                      campaign_serial.dataset.target(r)) &&
        campaign.dataset.tag(r) == campaign_serial.dataset.tag(r);
    const auto a = campaign.dataset.features(r);
    const auto b = campaign_serial.dataset.features(r);
    for (std::size_t c = 0; campaign_identical && c < a.size(); ++c)
      campaign_identical = bitwise_equal(a[c], b[c]);
  }

  // --- Stage 2b: the 12-model evaluation zoo, serial vs. flattened batch
  // across the pool. Reduced partition/iteration counts keep the stage
  // proportionate; the equivalence gate is what matters on slow runners.
  core::EvaluationConfig zoo_config = config.evaluation();
  zoo_config.validation.partitions = std::min<std::size_t>(config.partitions,
                                                           10);
  zoo_config.zoo.mlp.max_iterations =
      std::min<std::size_t>(config.nn_iterations, 300);

  zoo_config.validation.parallel = false;
  pre_arm = obs::Registry::global().snapshot();
  arm_start_ns = obs::trace_now_ns();
  t0 = std::chrono::steady_clock::now();
  const core::EvaluationSuite zoo_serial =
      core::evaluate_model_zoo(campaign.dataset, zoo_config);
  const double zoo_serial_s = seconds_since(t0);
  const ArmAttribution zoo_serial_attr =
      capture_arm("validation", zoo_serial_s, pre_arm, arm_start_ns,
                  obs::trace_now_ns(), "validation");
  std::printf("model zoo (serial)   : %8.3f s  (12 models, %zu partitions)\n",
              zoo_serial_s, zoo_config.validation.partitions);

  zoo_config.validation.parallel = true;
  zoo_config.validation.jobs = jobs;
  pre_arm = obs::Registry::global().snapshot();
  arm_start_ns = obs::trace_now_ns();
  t0 = std::chrono::steady_clock::now();
  const core::EvaluationSuite zoo_parallel =
      core::evaluate_model_zoo(campaign.dataset, zoo_config);
  const double zoo_parallel_s = seconds_since(t0);
  const ArmAttribution zoo_parallel_attr =
      capture_arm("validation", zoo_parallel_s, pre_arm, arm_start_ns,
                  obs::trace_now_ns(), "validation");
  const double zoo_speedup =
      zoo_parallel_s > 0.0 ? zoo_serial_s / zoo_parallel_s : 0.0;
  std::printf("model zoo (jobs=%zu)  : %8.3f s  (%.2fx vs serial)\n", jobs,
              zoo_parallel_s, zoo_speedup);

  bool zoo_identical =
      zoo_serial.evaluations.size() == zoo_parallel.evaluations.size();
  for (std::size_t i = 0; zoo_identical && i < zoo_serial.evaluations.size();
       ++i) {
    const auto& a = zoo_serial.evaluations[i].result;
    const auto& b = zoo_parallel.evaluations[i].result;
    zoo_identical = bitwise_equal(a.test_mpe, b.test_mpe) &&
                    bitwise_equal(a.train_mpe, b.train_mpe) &&
                    bitwise_equal(a.test_nrmse, b.test_nrmse) &&
                    bitwise_equal(a.train_nrmse, b.train_nrmse);
  }

  // --- Stage 2c: warm start from the artifact store. Train the full
  // twelve-model zoo once (cold), persist it as a checksummed bundle,
  // reload it, and require the reloaded models to serialize
  // byte-identically to the trained ones. The interesting number is the
  // warm-start speedup: what a deployment saves by shipping the bundle
  // instead of retraining at boot.
  const std::string zoo_bundle_dir =
      !config.zoo_out.empty() ? config.zoo_out : std::string("BENCH_zoo_bundle");
  const std::string zoo_load_dir =
      !config.zoo_in.empty() ? config.zoo_in : zoo_bundle_dir;
  store::FileOps& files = store::FileOps::real();

  t0 = std::chrono::steady_clock::now();
  const core::TrainedZoo zoo_cold =
      core::train_full_zoo(campaign.dataset, zoo_config.zoo);
  const double zoo_cold_s = seconds_since(t0);

  const store::ZooSaveResult saved = core::save_trained_zoo(
      files, zoo_bundle_dir, zoo_cold,
      {{"seed", std::to_string(config.seed)},
       {"machine", machine.name},
       {"nn_iters", std::to_string(zoo_config.zoo.mlp.max_iterations)}});
  obs::add_manifest_extra("zoo_bundle_digest", saved.bundle_digest);

  t0 = std::chrono::steady_clock::now();
  const core::ZooLoadOutcome warm = core::load_or_repair_zoo(
      files, zoo_load_dir, campaign.dataset, zoo_config.zoo);
  const double zoo_warm_s = seconds_since(t0);
  const double warm_speedup = zoo_warm_s > 0.0 ? zoo_cold_s / zoo_warm_s : 0.0;
  std::printf("zoo train (cold)     : %8.3f s  (12 models)\n", zoo_cold_s);
  std::printf("zoo load (warm)      : %8.3f s  (%.2fx vs cold; %zu "
              "retrained)\n",
              zoo_warm_s, warm_speedup, warm.retrained.size());

  bool zoo_warm_identical = warm.retrained.empty();
  for (const auto& [name, cold_model] : zoo_cold.models) {
    if (!zoo_warm_identical) break;
    const ml::Regressor* warm_model = warm.zoo.find(name);
    if (warm_model == nullptr) {
      zoo_warm_identical = false;
      break;
    }
    std::ostringstream cold_bytes, warm_bytes;
    ml::save_model(cold_bytes, *cold_model);
    ml::save_model(warm_bytes, *warm_model);
    zoo_warm_identical = cold_bytes.str() == warm_bytes.str();
  }

  const double end_to_end_serial_s = campaign_serial_s + zoo_serial_s;
  const double end_to_end_parallel_s = campaign_s + zoo_parallel_s;
  const double end_to_end_speedup =
      end_to_end_parallel_s > 0.0
          ? end_to_end_serial_s / end_to_end_parallel_s
          : 0.0;
  std::printf("end-to-end           : %8.3f s serial, %.3f s parallel "
              "(%.2fx)\n",
              end_to_end_serial_s, end_to_end_parallel_s, end_to_end_speedup);

  // Where did the serial-vs-parallel gap go? Decompose each stage's
  // worker-seconds and walk the parallel arm's span graph.
  print_arm("campaign", jobs, campaign_serial_s, campaign_parallel_attr);
  print_arm("zoo", jobs, zoo_serial_s, zoo_parallel_attr);

  // --- Stage 3: set-F MLP validation, fast path vs pre-PR replica.
  // Both arms share one MlpOptions so the comparison isolates the
  // implementation, not the hyperparameters.
  ml::MlpOptions mlp = config.evaluation().zoo.mlp;
  mlp.hidden_units = core::hidden_units_for(core::FeatureSet::kF);
  const auto& columns = core::feature_set_columns(core::FeatureSet::kF);
  ml::ValidationOptions validation;
  validation.partitions = config.partitions;

  const ml::ModelFactory fast_factory =
      [&mlp](const linalg::Matrix& x,
             std::span<const double> y) -> ml::RegressorPtr {
    return std::make_unique<ml::MlpRegressor>(ml::MlpRegressor::fit(x, y, mlp));
  };
  const ml::ModelFactory legacy_factory =
      [&mlp](const linalg::Matrix& x,
             std::span<const double> y) -> ml::RegressorPtr {
    return LegacyMlp::fit(x, y, mlp);
  };

  t0 = std::chrono::steady_clock::now();
  const ml::ValidationResult legacy = ml::repeated_subsampling_validation(
      campaign.dataset, columns, legacy_factory, validation);
  const double legacy_s = seconds_since(t0);
  std::printf("validation (legacy)  : %8.3f s  (MPE %.3f%%, NRMSE %.3f)\n",
              legacy_s, legacy.test_mpe, legacy.test_nrmse);

  t0 = std::chrono::steady_clock::now();
  const ml::ValidationResult fast = ml::repeated_subsampling_validation(
      campaign.dataset, columns, fast_factory, validation);
  const double fast_s = seconds_since(t0);
  std::printf("validation (fast)    : %8.3f s  (MPE %.3f%%, NRMSE %.3f)\n",
              fast_s, fast.test_mpe, fast.test_nrmse);

  const double speedup = fast_s > 0.0 ? legacy_s / fast_s : 0.0;
  std::printf("validation speedup   : %8.2fx (%zu partitions, set F)\n",
              speedup, validation.partitions);

  // --- Equivalence gates.
  std::vector<Gate> gates;
  Rng rng(config.seed ^ 0x5eedULL);

  {  // (a) tiled GEMM vs the naive reference loop, odd non-square shapes.
    double worst = 0.0;
    const std::size_t shapes[][3] = {{17, 31, 23}, {64, 64, 64}, {1, 129, 7}};
    for (const auto& s : shapes) {
      const linalg::Matrix a = random_matrix(s[0], s[1], rng);
      const linalg::Matrix b = random_matrix(s[1], s[2], rng);
      const linalg::Matrix fast_c = linalg::matmul(a, b);
      const linalg::Matrix ref_c = linalg::matmul_naive(a, b);
      worst = std::max(worst, max_abs_diff(fast_c.data(), ref_c.data()));
    }
    gates.push_back({"matmul_vs_naive_max_abs_diff", worst, 1e-12});
  }

  {  // (b) batched loss/gradient vs the rowwise reference oracle.
    const std::size_t m = 37, inputs = 9, hidden = 13;
    const linalg::Matrix x = random_matrix(m, inputs, rng);
    std::vector<double> y(m);
    for (double& v : y) v = rng.uniform(-1.0, 1.0);
    ml::MlpNetwork net(inputs, hidden);
    Rng init(config.seed + 1);
    net.initialize(init);
    std::vector<double> g_fast(net.num_parameters());
    std::vector<double> g_ref(net.num_parameters());
    const double l_fast = net.loss_and_gradient(x, y, 1e-6, g_fast);
    const double l_ref = net.loss_and_gradient_reference(x, y, 1e-6, g_ref);
    const double worst =
        std::max(std::abs(l_fast - l_ref), max_abs_diff(g_fast, g_ref));
    gates.push_back({"batched_loss_vs_reference_max_abs_diff", worst, 1e-12});
  }

  // (c) fast vs legacy validation metrics. The two arms differ only in the
  // tanh implementation (|rel err| < 1e-15 per call), so trained models —
  // and the averaged validation metrics — must agree far inside a quarter
  // of a percentage point.
  gates.push_back(
      {"fast_vs_legacy_test_mpe_pp", std::abs(fast.test_mpe - legacy.test_mpe),
       0.25});
  gates.push_back({"fast_vs_legacy_test_nrmse_pp",
                   std::abs(fast.test_nrmse - legacy.test_nrmse), 0.25});

  // (e) the task-parallel orchestration layers must be byte-equivalent to
  // their serial counterparts: the campaign's sequenced collector and the
  // flattened model-zoo batch.
  gates.push_back({"campaign_parallel_bit_identical",
                   campaign_identical ? 0.0 : 1.0, 0.0});
  gates.push_back({"zoo_parallel_bit_identical", zoo_identical ? 0.0 : 1.0,
                   0.0});

  // (f) the store round-trip: models reloaded from the zoo bundle must be
  // byte-identical to the freshly trained zoo (and nothing retrained).
  gates.push_back({"zoo_warm_start_bit_identical",
                   zoo_warm_identical ? 0.0 : 1.0, 0.0});

  {  // (d) memoized contention solve must be bit-identical to a cold solve.
    const sim::ApplicationSpec cg = sim::find_application("cg");
    const std::vector<sim::ApplicationSpec> coapps(3, cg);
    const sim::RunMeasurement first =
        testbed.run_colocated(canneal, coapps, 0, /*repetition=*/11);
    const sim::RunMeasurement second =
        testbed.run_colocated(canneal, coapps, 0, /*repetition=*/11);
    gates.push_back({"solve_cache_bit_identical",
                     bitwise_equal(first.execution_time_s,
                                   second.execution_time_s)
                         ? 0.0
                         : 1.0,
                     0.0});
  }

  bool all_pass = true;
  std::printf("\nequivalence gates:\n");
  for (const Gate& g : gates) {
    all_pass = all_pass && g.pass();
    std::printf("  %-40s %s  (%.3e <= %.3e)\n", g.name,
                g.pass() ? "PASS" : "FAIL", g.value, g.limit);
  }

  auto& registry = obs::Registry::global();
  const std::uint64_t hits =
      registry.counter("sim_solve_cache_hits_total").value();
  const std::uint64_t misses =
      registry.counter("sim_solve_cache_misses_total").value();
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  std::printf("solve cache          : %llu hits / %llu misses (%.1f%%)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), 100.0 * hit_rate);

  std::ofstream os(out_path, std::ios::trunc);
  if (os) {
    os.precision(17);
    os << "{\n"
       << "  \"program\": \"bench_perf_pipeline\",\n"
       << "  \"partitions\": " << validation.partitions << ",\n"
       << "  \"nn_iterations\": " << mlp.max_iterations << ",\n"
       << "  \"seed\": " << config.seed << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"timings_s\": {\n"
       << "    \"trace_profile\": " << profile_s << ",\n"
       << "    \"campaign_serial\": " << campaign_serial_s << ",\n"
       << "    \"campaign_parallel\": " << campaign_s << ",\n"
       << "    \"zoo_serial\": " << zoo_serial_s << ",\n"
       << "    \"zoo_parallel\": " << zoo_parallel_s << ",\n"
       << "    \"zoo_train_cold\": " << zoo_cold_s << ",\n"
       << "    \"zoo_load_warm\": " << zoo_warm_s << ",\n"
       << "    \"end_to_end_serial\": " << end_to_end_serial_s << ",\n"
       << "    \"end_to_end_parallel\": " << end_to_end_parallel_s << ",\n"
       << "    \"validation_legacy\": " << legacy_s << ",\n"
       << "    \"validation_fast\": " << fast_s << "\n  },\n"
       << "  \"campaign_speedup\": " << campaign_speedup << ",\n"
       << "  \"zoo_speedup\": " << zoo_speedup << ",\n"
       << "  \"zoo_warm_start_speedup\": " << warm_speedup << ",\n"
       << "  \"zoo_bundle_digest\": \"" << saved.bundle_digest << "\",\n"
       << "  \"zoo_models_retrained\": " << warm.retrained.size() << ",\n"
       << "  \"end_to_end_speedup\": " << end_to_end_speedup << ",\n"
       << "  \"validation_speedup\": " << speedup << ",\n"
       << "  \"fast\": {\"test_mpe\": " << fast.test_mpe
       << ", \"test_nrmse\": " << fast.test_nrmse << "},\n"
       << "  \"legacy\": {\"test_mpe\": " << legacy.test_mpe
       << ", \"test_nrmse\": " << legacy.test_nrmse << "},\n"
       << "  \"solve_cache\": {\"hits\": " << hits << ", \"misses\": "
       << misses << ", \"hit_rate\": " << hit_rate << "},\n"
       << "  \"attribution\": {\n";
    json_arm(os, "campaign", jobs, campaign_serial_s, campaign_serial_attr,
             campaign_parallel_attr, /*last=*/false);
    json_arm(os, "zoo", jobs, zoo_serial_s, zoo_serial_attr,
             zoo_parallel_attr, /*last=*/true);
    os << "  },\n"
       << "  \"equivalence\": [\n";
    for (std::size_t i = 0; i < gates.size(); ++i)
      json_gate(os, gates[i], i + 1 == gates.size());
    os << "  ],\n"
       << "  \"equivalence_ok\": " << (all_pass ? "true" : "false") << "\n"
       << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", out_path.c_str());
  }

  return all_pass ? 0 : 1;
}
