// Performance-trajectory harness for the PR 4 fast paths. Times the three
// pipeline stages the optimization targeted — trace profiling, the Table V
// collection campaign, and the paper's 100-partition set-F MLP validation —
// and races the batched MLP training/inference path against an in-file
// replica of the pre-optimization implementation (rowwise std::tanh
// loss/gradient, per-call-allocating predict, serial restarts) driven
// through the same repeated_subsampling_validation protocol.
//
// Stage 1 additionally races the batched trace->profile kernel path (PR 9:
// TraceGenerator::next_batch + the marker-bitmap StackDistanceProfiler)
// against an in-file replica of the pre-optimization implementation
// (Fenwick tree + std::unordered_map last-access table, one reference at a
// time) and reports the kernel speedup.
//
// Writes a machine-readable BENCH_pipeline.json (override with --out=FILE)
// recording the stage timings, the validation speedup, and a set of
// numerical-equivalence gates. The exit status reflects ONLY the
// equivalence gates — never timing — so CI can run this on noisy shared
// runners without flaking:
//   gate matmul_vs_naive          tiled GEMM == reference i-k-j loop
//   gate batched_loss_vs_reference batched loss/grad == rowwise oracle
//   gate fast_vs_legacy_mpe/nrmse  validation metrics match the replica
//   gate trace_batch_bit_identical next_batch() == per-reference next()
//   gate trace_profile_bit_identical batched profiler == Fenwick replica
//   gate cache_batch_bit_identical access_batch() == per-access walk
//   gate solve_cache_bit_identical cached contention solve == cold solve
//   gate campaign_parallel_bit_identical  parallel campaign == serial sweep
//   gate zoo_parallel_bit_identical       fused multi-restart zoo on the
//                                         flat task graph == sequential
//                                         restart loop, serially scheduled
//   gate zoo_warm_start_bit_identical     zoo reloaded from the store
//                                         bundle == freshly trained zoo
//
// The zoo race runs at max(--restarts, 4) SCG restarts per MLP fit: the
// serial arm pins the historical sequential restart loop (fused + pooled
// restarts disabled, serial validation scheduling) while the parallel arm
// runs the fused batched kernels on the flat model x partition task graph,
// so zoo_speedup measures the tentpole (scheduler + fused kernels) and the
// zoo_parallel_bit_identical gate polices its bit-identity. The JSON also
// records a "training" block (scg_fused_restarts_total, train_gemm_seconds
// sum/count, design-memo hits/misses) mirroring the manifest's training
// attribution section that obs_report --gate consumes.
//
// Scale knobs: --sweep-scale=N clones every campaign target N-fold, pushing
// the sweep to 10-100x the paper's cell count; --jobs-sweep=1,2,4,8 re-runs
// the (scaled) campaign at each jobs value and emits a "jobs_scaling" curve
// in the JSON, each run gated bit-identical against the serial dataset;
// --restarts=N raises the restart count everywhere (the zoo race floor
// stays 4); --no-parallel-restarts pins every fit to the historical serial
// restart loop, turning the zoo race into a scheduler-only comparison.
//
// The warm-start arm times training the full 12-model zoo cold against
// saving it to a checksummed store bundle (--zoo-out, default
// BENCH_zoo_bundle) and loading it back (--zoo-in overrides the load
// path). At --fault-rate 0 the reloaded models must serialize
// byte-identically to the trained ones.
//
// The campaign and model-zoo stages are additionally timed serial vs.
// parallel (--jobs / COLOC_JOBS workers) and the speedups reported; on a
// single-core host both arms time about the same, by design — the gates
// still verify the orchestration is byte-equivalent.
//
// Run the headline number (Release build):
//   ./build/bench/bench_perf_pipeline --partitions=100 --jobs=0
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/zoo_artifacts.hpp"
#include "linalg/matrix.hpp"
#include "ml/dataset.hpp"
#include "ml/mlp.hpp"
#include "ml/scg.hpp"
#include "ml/serialization.hpp"
#include "ml/validation.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cache.hpp"
#include "sim/stack_distance.hpp"
#include "sim/trace.hpp"

namespace {

using namespace coloc;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One numerical-equivalence check: `value` must stay <= `limit`.
struct Gate {
  const char* name;
  double value = 0.0;
  double limit = 0.0;
  bool pass() const { return value <= limit; }
};

// ---------------------------------------------------------------------------
// Pre-optimization MLP replica. This is the seed implementation the batched
// path replaced: std::tanh through a row-at-a-time forward/backward pass,
// predict() allocating a fresh standardization buffer per call, and the
// default per-row predict_all loop. Kept here (not in src/) so the library
// carries exactly one tanh and one training path; the replica exists only
// to give the speedup measurement an honest baseline.
// ---------------------------------------------------------------------------

class LegacyMlp final : public ml::Regressor {
 public:
  static std::unique_ptr<LegacyMlp> fit(const linalg::Matrix& x,
                                        std::span<const double> y,
                                        const ml::MlpOptions& options) {
    linalg::Matrix design = x;
    ml::Standardizer scaler = ml::Standardizer::fit(design);
    scaler.transform(design);
    ml::TargetScaler target = ml::TargetScaler::fit(y);
    const std::vector<double> z = target.transform_all(y);

    auto model = std::unique_ptr<LegacyMlp>(new LegacyMlp);
    model->inputs_ = x.cols();
    model->hidden_ = options.hidden_units;
    model->scaler_ = std::move(scaler);
    model->target_ = std::move(target);
    model->params_.assign(model->num_parameters(), 0.0);

    Rng rng(options.seed);
    model->initialize(rng);

    ml::ScgObjective objective{
        .dimension = model->num_parameters(),
        .value_and_gradient =
            [&](std::span<const double> p, std::span<double> g) {
              std::copy(p.begin(), p.end(), model->params_.begin());
              return model->loss_and_gradient(design, z,
                                              options.weight_decay, g);
            },
    };
    std::vector<double> p = model->params_;
    ml::ScgOptions scg_options;
    scg_options.max_iterations = options.max_iterations;
    scg_options.gradient_tolerance = options.gradient_tolerance;
    const ml::ScgResult res = ml::scg_minimize(objective, p, scg_options);
    model->params_.assign(res.solution.begin(), res.solution.end());
    return model;
  }

  double predict(std::span<const double> features) const override {
    // Deliberately the pre-PR behaviour: heap-allocate the standardized
    // row on every call.
    std::vector<double> row(features.begin(), features.end());
    scaler_.transform_row(row);
    return target_.inverse(forward(row));
  }

  std::string describe() const override { return "LegacyMlp"; }

 private:
  LegacyMlp() = default;

  std::size_t num_parameters() const {
    return hidden_ * inputs_ + 2 * hidden_ + 1;
  }
  std::size_t b1_offset() const { return hidden_ * inputs_; }
  std::size_t w2_offset() const { return hidden_ * inputs_ + hidden_; }
  std::size_t b2_offset() const { return hidden_ * inputs_ + 2 * hidden_; }

  void initialize(Rng& rng) {
    const double w1_scale = std::sqrt(1.0 / static_cast<double>(inputs_));
    const double w2_scale = std::sqrt(1.0 / static_cast<double>(hidden_));
    for (std::size_t i = 0; i < hidden_ * inputs_; ++i)
      params_[i] = rng.normal(0.0, w1_scale);
    for (std::size_t i = 0; i < hidden_; ++i)
      params_[w2_offset() + i] = rng.normal(0.0, w2_scale);
  }

  double forward(std::span<const double> x) const {
    const double* w1 = params_.data();
    const double* b1 = params_.data() + b1_offset();
    const double* w2 = params_.data() + w2_offset();
    double out = params_[b2_offset()];
    for (std::size_t h = 0; h < hidden_; ++h) {
      double a = b1[h];
      const double* wrow = w1 + h * inputs_;
      for (std::size_t i = 0; i < inputs_; ++i) a += wrow[i] * x[i];
      out += w2[h] * std::tanh(a);
    }
    return out;
  }

  double loss_and_gradient(const linalg::Matrix& x, std::span<const double> y,
                           double weight_decay,
                           std::span<double> grad) const {
    const std::size_t m = x.rows();
    const double* w1 = params_.data();
    const double* b1 = params_.data() + b1_offset();
    const double* w2 = params_.data() + w2_offset();
    double* g_w1 = grad.data();
    double* g_b1 = grad.data() + b1_offset();
    double* g_w2 = grad.data() + w2_offset();
    double& g_b2 = grad[b2_offset()];
    std::fill(grad.begin(), grad.end(), 0.0);

    std::vector<double> act(hidden_);
    double loss = 0.0;
    const double inv_m = 1.0 / static_cast<double>(m);
    for (std::size_t r = 0; r < m; ++r) {
      const auto row = x.row(r);
      double out = params_[b2_offset()];
      for (std::size_t h = 0; h < hidden_; ++h) {
        double a = b1[h];
        const double* wrow = w1 + h * inputs_;
        for (std::size_t i = 0; i < inputs_; ++i) a += wrow[i] * row[i];
        act[h] = std::tanh(a);
        out += w2[h] * act[h];
      }
      const double err = out - y[r];
      loss += 0.5 * err * err;
      const double d_out = err * inv_m;
      g_b2 += d_out;
      for (std::size_t h = 0; h < hidden_; ++h) {
        g_w2[h] += d_out * act[h];
        const double d_a = d_out * w2[h] * (1.0 - act[h] * act[h]);
        g_b1[h] += d_a;
        double* grow = g_w1 + h * inputs_;
        for (std::size_t i = 0; i < inputs_; ++i) grow[i] += d_a * row[i];
      }
    }
    loss *= inv_m;
    if (weight_decay > 0.0) {
      double wnorm = 0.0;
      for (std::size_t i = 0; i < params_.size(); ++i) {
        wnorm += params_[i] * params_[i];
        grad[i] += weight_decay * params_[i];
      }
      loss += 0.5 * weight_decay * wnorm;
    }
    return loss;
  }

  std::size_t inputs_ = 0;
  std::size_t hidden_ = 0;
  std::vector<double> params_;
  ml::Standardizer scaler_;
  ml::TargetScaler target_;
};

// ---------------------------------------------------------------------------
// Pre-PR-9 stack-distance profiler replica: a Fenwick (binary indexed) tree
// of reuse markers queried with ~log(n) random probes per reference, plus a
// std::unordered_map last-access table. This is the seed implementation the
// marker-bitmap profiler replaced; it lives here (not in src/) so the
// library carries exactly one profiler, and exists to give the kernel
// speedup an honest baseline and the equivalence gate an oracle.
// ---------------------------------------------------------------------------

class LegacyStackProfiler {
 public:
  explicit LegacyStackProfiler(std::size_t max_references)
      : tree_(max_references) {
    last_access_.reserve(1 << 16);
  }

  std::uint64_t record(sim::LineAddress line) {
    const std::size_t now = static_cast<std::size_t>(time_);
    std::uint64_t distance = sim::kColdMiss;
    auto it = last_access_.find(line);
    if (it != last_access_.end()) {
      const std::size_t prev = it->second;
      distance = static_cast<std::uint64_t>(
          now > prev + 1 ? tree_.range_sum(prev + 1, now - 1) : 0);
      tree_.add(prev, -1);  // the line's marker moves to `now`
      it->second = now;
    } else {
      ++cold_;
      last_access_.emplace(line, now);
    }
    tree_.add(now, +1);
    ++time_;
    if (distance != sim::kColdMiss) {
      if (distance < max_tracked_) {
        if (distance >= histogram_.size()) histogram_.resize(distance + 1, 0);
        ++histogram_[distance];
      } else {
        ++beyond_;
      }
    }
    return distance;
  }

  std::uint64_t cold_misses() const { return cold_; }
  std::uint64_t beyond_tracked() const { return beyond_; }
  const std::vector<std::uint64_t>& histogram() const { return histogram_; }

 private:
  sim::FenwickTree tree_;
  std::unordered_map<sim::LineAddress, std::size_t> last_access_;
  std::vector<std::uint64_t> histogram_;
  std::size_t max_tracked_ = 1 << 22;
  std::uint64_t time_ = 0;
  std::uint64_t cold_ = 0;
  std::uint64_t beyond_ = 0;
};

/// Parses "1,2,4,8" into jobs values; ignores empty/invalid tokens.
std::vector<std::size_t> parse_jobs_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    char* end = nullptr;
    const long v = std::strtol(token.c_str(), &end, 10);
    if (end != token.c_str() && *end == '\0' && v > 0) {
      out.push_back(static_cast<std::size_t>(v));
    }
  }
  return out;
}

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  linalg::Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-2.0, 2.0);
  return m;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Row-for-row, bit-for-bit dataset comparison (targets, tags, features).
bool datasets_bit_identical(const ml::Dataset& a, const ml::Dataset& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    if (!bitwise_equal(a.target(r), b.target(r)) || a.tag(r) != b.tag(r)) {
      return false;
    }
    const auto fa = a.features(r);
    const auto fb = b.features(r);
    if (fa.size() != fb.size()) return false;
    for (std::size_t c = 0; c < fa.size(); ++c) {
      if (!bitwise_equal(fa[c], fb[c])) return false;
    }
  }
  return true;
}

void json_gate(std::ofstream& os, const Gate& g, bool last) {
  os << "    {\"name\": \"" << g.name << "\", \"value\": " << g.value
     << ", \"limit\": " << g.limit << ", \"pass\": "
     << (g.pass() ? "true" : "false") << "}" << (last ? "\n" : ",\n");
}

// ---------------------------------------------------------------------------
// Attribution capture. Each timed arm (campaign serial/parallel, zoo
// serial/parallel) gets its pool accounting read from the per-stage gauges
// the orchestrators export, its queue-wait/commit-hold histogram activity
// isolated as a before/after snapshot delta (the histograms are cumulative
// across the whole process), and — when tracing is live — a critical-path
// pass over only the spans recorded inside the arm's time window, so the
// two same-named stage roots (serial arm, parallel arm) never collide.
// ---------------------------------------------------------------------------

/// Cumulative-histogram activity attributable to one arm.
struct HistDelta {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p99 = 0.0;
};

HistDelta hist_delta(const obs::MetricsSnapshot& before,
                     const obs::MetricsSnapshot& after,
                     const std::string& name) {
  HistDelta d;
  const obs::MetricSample* a = after.find(name);
  if (a == nullptr) return d;
  const obs::MetricSample* b = before.find(name);
  std::vector<std::uint64_t> buckets = a->histogram_buckets;
  d.count = a->histogram_count;
  d.sum = a->histogram_sum;
  if (b != nullptr) {
    d.count -= b->histogram_count;
    d.sum -= b->histogram_sum;
    for (std::size_t i = 0;
         i < buckets.size() && i < b->histogram_buckets.size(); ++i)
      buckets[i] -= b->histogram_buckets[i];
  }
  d.p99 = obs::Histogram::quantile_from_counts(buckets, 0.99);
  return d;
}

/// Everything the attribution report needs about one timed arm.
struct ArmAttribution {
  double wall_s = 0.0;
  double busy_s = 0.0;
  double idle_s = 0.0;
  double workers = 0.0;
  double utilization = 0.0;
  HistDelta queue_wait;
  HistDelta commit_hold;
  obs::CriticalPathResult critical_path;
};

/// Critical path over only the spans that started inside [from_ns, to_ns].
obs::CriticalPathResult window_critical_path(std::uint64_t from_ns,
                                             std::uint64_t to_ns,
                                             const std::string& root) {
  const obs::TraceSink* sink = obs::TraceSink::current();
  if (sink == nullptr) return {};
  std::vector<obs::TraceEvent> window;
  for (obs::TraceEvent& e : sink->events()) {
    if (e.start_ns >= from_ns && e.start_ns <= to_ns)
      window.push_back(std::move(e));
  }
  return obs::CriticalPath::analyze(obs::SpanGraph::build(window), root);
}

/// Reads the arm's stage pool gauges (exported at the end of the arm) and
/// histogram deltas vs `before`. `stage` is the gauge label the
/// orchestrator exported ("campaign" or "validation").
ArmAttribution capture_arm(const char* stage, double wall_s,
                           const obs::MetricsSnapshot& before,
                           std::uint64_t from_ns, std::uint64_t to_ns,
                           const std::string& root_span) {
  auto& registry = obs::Registry::global();
  const obs::Labels labels = {{"stage", stage}};
  ArmAttribution arm;
  arm.wall_s = wall_s;
  arm.busy_s = registry.gauge("stage_pool_busy_seconds", labels).value();
  arm.idle_s = registry.gauge("stage_pool_idle_seconds", labels).value();
  arm.workers = registry.gauge("stage_pool_workers", labels).value();
  arm.utilization = registry.gauge("stage_pool_utilization", labels).value();
  const obs::MetricsSnapshot after = registry.snapshot();
  arm.queue_wait = hist_delta(before, after, "pool_queue_wait_seconds");
  arm.commit_hold = hist_delta(before, after, "pool_commit_hold_seconds");
  arm.critical_path = window_critical_path(from_ns, to_ns, root_span);
  return arm;
}

/// The serial-vs-parallel gap decomposition for one stage. All terms are
/// worker-seconds so they add up against gap = jobs*wall_par - wall_serial:
///   idle          workers parked while the arm's pool was alive
///   exec_overhead pool busy time in excess of the serial arm's wall
///                 (per-task span/bookkeeping cost; can be slightly
///                 negative when the parallel arm does less in-pool work)
///   serial_section worker capacity lost while no pool existed
///                 (setup, baselines, checkpoint flushes, reduction)
/// The three are independently sourced (pool accounting vs wall clocks),
/// so attributed_fraction ~ 1 checks the bookkeeping is consistent.
struct GapAttribution {
  double gap_worker_s = 0.0;
  double idle_s = 0.0;
  double exec_overhead_s = 0.0;
  double serial_section_s = 0.0;
  double attributed_fraction = 0.0;
};

GapAttribution attribute_gap(std::size_t jobs, double wall_serial_s,
                             const ArmAttribution& parallel) {
  GapAttribution g;
  const double capacity = static_cast<double>(jobs) * parallel.wall_s;
  g.gap_worker_s = capacity - wall_serial_s;
  g.idle_s = parallel.idle_s;
  g.exec_overhead_s = parallel.busy_s - wall_serial_s;
  g.serial_section_s = capacity - parallel.busy_s - parallel.idle_s;
  const double attributed =
      g.idle_s + g.exec_overhead_s + g.serial_section_s;
  g.attributed_fraction =
      std::abs(g.gap_worker_s) > 1e-12 ? attributed / g.gap_worker_s : 1.0;
  return g;
}

void json_arm(std::ofstream& os, const char* key, std::size_t jobs,
              double wall_serial_s, const ArmAttribution& serial,
              const ArmAttribution& parallel, bool last) {
  const GapAttribution gap = attribute_gap(jobs, wall_serial_s, parallel);
  const obs::CriticalPathResult& cp = parallel.critical_path;
  os << "    \"" << key << "\": {\n"
     << "      \"wall_serial_s\": " << serial.wall_s << ",\n"
     << "      \"wall_parallel_s\": " << parallel.wall_s << ",\n"
     << "      \"gap_worker_seconds\": " << gap.gap_worker_s << ",\n"
     << "      \"idle_seconds\": " << gap.idle_s << ",\n"
     << "      \"exec_overhead_seconds\": " << gap.exec_overhead_s << ",\n"
     << "      \"serial_section_seconds\": " << gap.serial_section_s << ",\n"
     << "      \"attributed_fraction\": " << gap.attributed_fraction << ",\n"
     << "      \"mean_worker_utilization\": " << parallel.utilization << ",\n"
     << "      \"pool_workers\": " << parallel.workers << ",\n"
     << "      \"pool_busy_seconds\": " << parallel.busy_s << ",\n"
     << "      \"queue_wait\": {\"sum_s\": " << parallel.queue_wait.sum
     << ", \"p99_s\": " << parallel.queue_wait.p99 << ", \"count\": "
     << parallel.queue_wait.count << "},\n"
     << "      \"commit_hold\": {\"sum_s\": " << parallel.commit_hold.sum
     << ", \"count\": " << parallel.commit_hold.count << "},\n"
     << "      \"critical_path_seconds\": " << cp.critical_path_seconds
     << ",\n"
     << "      \"parallel_overhead_seconds\": "
     << cp.parallel_overhead_seconds << ",\n"
     << "      \"critical_path_found\": " << (cp.found ? "true" : "false")
     << ",\n"
     << "      \"critical_path_coverage\": " << cp.coverage << ",\n"
     << "      \"critical_chain_length\": " << cp.chain_length << "\n"
     << "    }" << (last ? "\n" : ",\n");
}

void print_arm(const char* name, std::size_t jobs, double wall_serial_s,
               const ArmAttribution& parallel) {
  const GapAttribution gap = attribute_gap(jobs, wall_serial_s, parallel);
  std::printf(
      "attribution (%s): gap %.3f worker-s = idle %.3f + exec-overhead "
      "%.3f + serial-section %.3f (%.0f%% attributed)\n",
      name, gap.gap_worker_s, gap.idle_s, gap.exec_overhead_s,
      gap.serial_section_s, 100.0 * gap.attributed_fraction);
  if (parallel.critical_path.found) {
    std::printf(
      "  critical path      : %8.3f s of %.3f s wall (chain %zu/%zu "
      "tasks); queue-wait p99 %.2g s, commit-hold sum %.2g s\n",
      parallel.critical_path.critical_path_seconds,
      parallel.critical_path.wall_seconds,
      parallel.critical_path.chain_length, parallel.critical_path.tasks,
      parallel.queue_wait.p99, parallel.commit_hold.sum);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());
  const std::string out_path = args.get("out", "BENCH_pipeline.json");

  // The attribution pass below walks the span graph; keep tracing live
  // even when the run was started without --trace-out/--bundle-out. The
  // local sink is destroyed before `session` (reverse declaration order),
  // by which point every span has closed.
  std::unique_ptr<obs::TraceSink> local_sink;
  if (obs::TraceSink::current() == nullptr) {
    local_sink = std::make_unique<obs::TraceSink>();
    local_sink->install();
  }

  // --- Stage 1: trace profiling (stack-distance pass over one app trace),
  // batched kernel vs the pre-PR Fenwick replica, with bit-identity gates.
  const sim::ApplicationSpec canneal = sim::find_application("canneal");
  const std::size_t trace_len = config.quick ? 200'000 : 2'000'000;
  sim::TraceGenerator generator(canneal.trace, config.seed);
  auto t0 = std::chrono::steady_clock::now();
  const std::vector<sim::LineAddress> trace = generator.generate(trace_len);
  const double generate_s = seconds_since(t0);

  // next_batch() must replay the per-reference next() stream exactly.
  bool trace_batch_identical = true;
  {
    sim::TraceGenerator scalar_gen(canneal.trace, config.seed);
    for (std::size_t i = 0; i < trace.size() && trace_batch_identical; ++i) {
      trace_batch_identical = scalar_gen.next() == trace[i];
    }
  }

  // Min-of-3 on both arms: sub-second single-shot walls swing the ratio
  // by tens of percent on a shared host.
  double profile_s = 0.0;
  std::optional<sim::StackDistanceProfiler> profiler_opt;
  for (int rep = 0; rep < 3; ++rep) {
    t0 = std::chrono::steady_clock::now();
    sim::StackDistanceProfiler run = sim::profile_trace(trace);
    const double wall = seconds_since(t0);
    if (rep == 0 || wall < profile_s) profile_s = wall;
    if (rep == 0) profiler_opt.emplace(std::move(run));
  }
  const sim::StackDistanceProfiler& profiler = *profiler_opt;

  double legacy_profile_s = 0.0;
  std::uint64_t legacy_cold = 0, legacy_beyond = 0;
  std::vector<std::uint64_t> legacy_histogram;
  for (int rep = 0; rep < 3; ++rep) {
    t0 = std::chrono::steady_clock::now();
    LegacyStackProfiler legacy_run(trace.size());
    for (const sim::LineAddress a : trace) legacy_run.record(a);
    const double wall = seconds_since(t0);
    if (rep == 0 || wall < legacy_profile_s) legacy_profile_s = wall;
    if (rep == 0) {
      legacy_cold = legacy_run.cold_misses();
      legacy_beyond = legacy_run.beyond_tracked();
      legacy_histogram = legacy_run.histogram();
    }
  }

  const bool profile_identical = profiler.cold_misses() == legacy_cold &&
                                 profiler.beyond_tracked() == legacy_beyond &&
                                 profiler.histogram() == legacy_histogram;
  const double kernel_speedup =
      profile_s > 0.0 ? legacy_profile_s / profile_s : 0.0;
  std::printf("trace profiling      : %8.3f s  (%zu refs, %llu cold; "
              "gen %.3f s)\n",
              profile_s, trace.size(),
              static_cast<unsigned long long>(profiler.cold_misses()),
              generate_s);
  std::printf("trace profiling (old): %8.3f s  (%.2fx kernel speedup)\n",
              legacy_profile_s, kernel_speedup);

  // Batched cache walk vs the per-access scalar path, over both a
  // power-of-two L2 and the non-power-of-two 12 MB LLC slice, standalone
  // and through the hierarchy filter.
  bool cache_batch_identical = true;
  {
    const std::size_t check_len = std::min<std::size_t>(trace.size(), 200'000);
    const std::span<const sim::LineAddress> lines(trace.data(), check_len);
    const std::vector<sim::CacheConfig> levels = {
        {.name = "L2", .size_bytes = 256 << 10, .line_bytes = 64,
         .associativity = 8},
        {.name = "LLC", .size_bytes = 12 << 20, .line_bytes = 64,
         .associativity = 16}};
    for (const sim::CacheConfig& cfg : levels) {
      sim::Cache batched(cfg);
      sim::Cache scalar(cfg);
      std::vector<std::uint8_t> hits(lines.size());
      batched.access_batch(lines, hits.data());
      for (std::size_t i = 0; i < lines.size() && cache_batch_identical;
           ++i) {
        cache_batch_identical = scalar.access(lines[i]) == (hits[i] != 0);
      }
      cache_batch_identical =
          cache_batch_identical &&
          batched.stats().hits == scalar.stats().hits &&
          batched.stats().misses == scalar.stats().misses;
      batched.reset_stats();
      scalar.reset_stats();
    }
    sim::CacheHierarchy batched_h(levels);
    sim::CacheHierarchy scalar_h(levels);
    std::size_t scalar_dram = 0;
    for (const sim::LineAddress a : lines) {
      scalar_dram += scalar_h.access(a) == scalar_h.num_levels() ? 1 : 0;
    }
    cache_batch_identical =
        cache_batch_identical && batched_h.access_batch(lines) == scalar_dram;
    for (std::size_t l = 0;
         l < batched_h.num_levels() && cache_batch_identical; ++l) {
      cache_batch_identical =
          batched_h.level(l).stats().accesses ==
              scalar_h.level(l).stats().accesses &&
          batched_h.level(l).stats().hits == scalar_h.level(l).stats().hits;
    }
    batched_h.reset_stats();
    scalar_h.reset_stats();
  }

  // --- Stage 2: collection campaign (Table V sweep on the 6-core Xeon),
  // serial vs. task-parallel. Each arm gets a fresh simulator so neither
  // benefits from the other's contention-solve cache; the sequenced
  // collector guarantees the two datasets are byte-identical.
  const std::size_t jobs = config.jobs != 0 ? config.jobs : configured_jobs();
  const sim::MachineConfig machine = sim::xeon_e5649();
  core::CampaignConfig campaign_config = core::CampaignConfig::paper_defaults();
  if (config.quick)
    campaign_config.pstate_indices = {0, machine.pstates.size() - 1};

  // --sweep-scale=N: clone every target N-1 times under derived names.
  // Clones share their donor's trace shape, so the sweep grows N-fold in
  // cells while the profile memo keeps cross-arm MRC work deduplicated.
  if (config.sweep_scale > 1) {
    const std::vector<sim::ApplicationSpec> originals = campaign_config.targets;
    for (std::size_t k = 2; k <= config.sweep_scale; ++k) {
      for (const sim::ApplicationSpec& app : originals) {
        sim::ApplicationSpec clone = app;
        clone.name = app.name + "~" + std::to_string(k);
        clone.trace.name = clone.name;
        campaign_config.targets.push_back(std::move(clone));
      }
    }
    std::printf("sweep scale          : %8zu x  (%zu target apps)\n",
                config.sweep_scale, campaign_config.targets.size());
  }

  sim::MeasurementOptions measurement;
  measurement.seed = config.seed;

  campaign_config.jobs = 1;
  sim::AppMrcLibrary serial_library;
  sim::Simulator serial_testbed(machine, &serial_library, measurement);
  serial_library.profile_all(campaign_config.targets);
  obs::MetricsSnapshot pre_arm = obs::Registry::global().snapshot();
  std::uint64_t arm_start_ns = obs::trace_now_ns();
  t0 = std::chrono::steady_clock::now();
  const core::CampaignResult campaign_serial =
      core::run_campaign(serial_testbed, campaign_config);
  const double campaign_serial_s = seconds_since(t0);
  const ArmAttribution campaign_serial_attr =
      capture_arm("campaign", campaign_serial_s, pre_arm, arm_start_ns,
                  obs::trace_now_ns(), "campaign");
  std::printf("campaign (serial)    : %8.3f s  (%zu rows)\n",
              campaign_serial_s, campaign_serial.dataset.num_rows());

  campaign_config.jobs = jobs;
  sim::AppMrcLibrary library;
  sim::Simulator testbed(machine, &library, measurement);
  library.profile_all(campaign_config.targets);
  pre_arm = obs::Registry::global().snapshot();
  arm_start_ns = obs::trace_now_ns();
  t0 = std::chrono::steady_clock::now();
  const core::CampaignResult campaign =
      core::run_campaign(testbed, campaign_config);
  const double campaign_s = seconds_since(t0);
  const ArmAttribution campaign_parallel_attr =
      capture_arm("campaign", campaign_s, pre_arm, arm_start_ns,
                  obs::trace_now_ns(), "campaign");
  const double campaign_speedup =
      campaign_s > 0.0 ? campaign_serial_s / campaign_s : 0.0;
  std::printf("campaign (jobs=%zu)   : %8.3f s  (%.2fx vs serial)\n", jobs,
              campaign_s, campaign_speedup);

  const bool campaign_identical =
      datasets_bit_identical(campaign.dataset, campaign_serial.dataset);

  // --- Stage 2a: jobs-scaling curve (--jobs-sweep=1,2,4,8). Each point
  // re-runs the (scaled) campaign at that jobs value; the profile memo
  // keeps the MRC work warm across points so the curve isolates
  // orchestration. Every point must reproduce the serial dataset
  // bit-for-bit. Each point is the minimum of three runs (fresh simulator
  // each, so no solve-cache carry-over): a paper-scale campaign is tens of
  // milliseconds, where one-shot walls are dominated by thread-spawn and
  // scheduler jitter. Speedups are quoted against the jobs=1 sweep point
  // when the list includes it (the same min-of-3 protocol on both sides),
  // falling back to the one-shot serial arm above.
  struct JobsScalingPoint {
    std::size_t jobs = 0;
    double wall_s = 0.0;
    double speedup_vs_serial = 0.0;
    bool bit_identical = true;
  };
  std::vector<JobsScalingPoint> jobs_scaling;
  bool jobs_sweep_identical = true;
  const std::vector<std::size_t> sweep_jobs = parse_jobs_list(config.jobs_sweep);
  for (const std::size_t j : sweep_jobs) {
    campaign_config.jobs = j;
    JobsScalingPoint point;
    point.jobs = j;
    point.wall_s = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      sim::AppMrcLibrary sweep_library;
      sim::Simulator sweep_testbed(machine, &sweep_library, measurement);
      sweep_library.profile_all(campaign_config.targets);
      t0 = std::chrono::steady_clock::now();
      const core::CampaignResult sweep_run =
          core::run_campaign(sweep_testbed, campaign_config);
      const double wall = seconds_since(t0);
      if (rep == 0 || wall < point.wall_s) point.wall_s = wall;
      if (rep == 0) {
        point.bit_identical = datasets_bit_identical(sweep_run.dataset,
                                                     campaign_serial.dataset);
      }
    }
    jobs_sweep_identical = jobs_sweep_identical && point.bit_identical;
    jobs_scaling.push_back(point);
  }
  const auto serial_point =
      std::find_if(jobs_scaling.begin(), jobs_scaling.end(),
                   [](const JobsScalingPoint& p) { return p.jobs == 1; });
  const double sweep_baseline_s =
      serial_point != jobs_scaling.end() ? serial_point->wall_s
                                         : campaign_serial_s;
  for (JobsScalingPoint& point : jobs_scaling) {
    point.speedup_vs_serial =
        point.wall_s > 0.0 ? sweep_baseline_s / point.wall_s : 0.0;
    std::printf("campaign (jobs=%zu sweep): %6.3f s  (%.2fx vs serial, %s)\n",
                point.jobs, point.wall_s, point.speedup_vs_serial,
                point.bit_identical ? "bit-identical" : "DIVERGED");
  }

  // --- Stage 2b: the 12-model evaluation zoo, serial vs. flattened batch
  // across the pool. Reduced partition/iteration counts keep the stage
  // proportionate; the equivalence gate is what matters on slow runners.
  // The race runs at >= 4 SCG restarts per MLP fit so it exercises the
  // fused multi-restart trainer: the serial arm pins the historical
  // sequential restart loop (fused + pooled restarts disabled), the
  // parallel arm runs the batched kernels on the flat task graph. The
  // bit-identity gate below therefore covers BOTH the scheduler and the
  // fused kernels. zoo_config itself stays untouched for Stage 2c so the
  // bundle digest is comparable across runs at default --restarts.
  core::EvaluationConfig zoo_config = config.evaluation();
  zoo_config.validation.partitions = std::min<std::size_t>(config.partitions,
                                                           10);
  zoo_config.zoo.mlp.max_iterations =
      std::min<std::size_t>(config.nn_iterations, 300);
  const std::size_t zoo_race_restarts =
      std::max<std::size_t>(config.restarts, 4);

  core::EvaluationConfig zoo_serial_config = zoo_config;
  zoo_serial_config.zoo.mlp.restarts = zoo_race_restarts;
  zoo_serial_config.zoo.mlp.fused_restarts = false;
  zoo_serial_config.zoo.mlp.parallel_restarts = false;
  zoo_serial_config.validation.parallel = false;
  pre_arm = obs::Registry::global().snapshot();
  arm_start_ns = obs::trace_now_ns();
  t0 = std::chrono::steady_clock::now();
  const core::EvaluationSuite zoo_serial =
      core::evaluate_model_zoo(campaign.dataset, zoo_serial_config);
  const double zoo_serial_s = seconds_since(t0);
  const ArmAttribution zoo_serial_attr =
      capture_arm("validation", zoo_serial_s, pre_arm, arm_start_ns,
                  obs::trace_now_ns(), "validation");
  std::printf("model zoo (serial)   : %8.3f s  (12 models, %zu partitions, "
              "%zu restarts)\n",
              zoo_serial_s, zoo_config.validation.partitions,
              zoo_race_restarts);

  core::EvaluationConfig zoo_parallel_config = zoo_config;
  zoo_parallel_config.zoo.mlp.restarts = zoo_race_restarts;
  zoo_parallel_config.validation.parallel = true;
  zoo_parallel_config.validation.jobs = jobs;
  pre_arm = obs::Registry::global().snapshot();
  arm_start_ns = obs::trace_now_ns();
  t0 = std::chrono::steady_clock::now();
  const core::EvaluationSuite zoo_parallel =
      core::evaluate_model_zoo(campaign.dataset, zoo_parallel_config);
  const double zoo_parallel_s = seconds_since(t0);
  const ArmAttribution zoo_parallel_attr =
      capture_arm("validation", zoo_parallel_s, pre_arm, arm_start_ns,
                  obs::trace_now_ns(), "validation");
  const double zoo_speedup =
      zoo_parallel_s > 0.0 ? zoo_serial_s / zoo_parallel_s : 0.0;
  std::printf("model zoo (jobs=%zu fused): %8.3f s  (%.2fx vs serial)\n",
              jobs, zoo_parallel_s, zoo_speedup);

  bool zoo_identical =
      zoo_serial.evaluations.size() == zoo_parallel.evaluations.size();
  for (std::size_t i = 0; zoo_identical && i < zoo_serial.evaluations.size();
       ++i) {
    const auto& a = zoo_serial.evaluations[i].result;
    const auto& b = zoo_parallel.evaluations[i].result;
    zoo_identical = bitwise_equal(a.test_mpe, b.test_mpe) &&
                    bitwise_equal(a.train_mpe, b.train_mpe) &&
                    bitwise_equal(a.test_nrmse, b.test_nrmse) &&
                    bitwise_equal(a.train_nrmse, b.train_nrmse);
  }

  // --- Stage 2c: warm start from the artifact store. Train the full
  // twelve-model zoo once (cold), persist it as a checksummed bundle,
  // reload it, and require the reloaded models to serialize
  // byte-identically to the trained ones. The interesting number is the
  // warm-start speedup: what a deployment saves by shipping the bundle
  // instead of retraining at boot.
  const std::string zoo_bundle_dir =
      !config.zoo_out.empty() ? config.zoo_out : std::string("BENCH_zoo_bundle");
  const std::string zoo_load_dir =
      !config.zoo_in.empty() ? config.zoo_in : zoo_bundle_dir;
  store::FileOps& files = store::FileOps::real();

  t0 = std::chrono::steady_clock::now();
  const core::TrainedZoo zoo_cold =
      core::train_full_zoo(campaign.dataset, zoo_config.zoo);
  const double zoo_cold_s = seconds_since(t0);

  const store::ZooSaveResult saved = core::save_trained_zoo(
      files, zoo_bundle_dir, zoo_cold,
      {{"seed", std::to_string(config.seed)},
       {"machine", machine.name},
       {"nn_iters", std::to_string(zoo_config.zoo.mlp.max_iterations)}});
  obs::add_manifest_extra("zoo_bundle_digest", saved.bundle_digest);

  t0 = std::chrono::steady_clock::now();
  const core::ZooLoadOutcome warm = core::load_or_repair_zoo(
      files, zoo_load_dir, campaign.dataset, zoo_config.zoo);
  const double zoo_warm_s = seconds_since(t0);
  const double warm_speedup = zoo_warm_s > 0.0 ? zoo_cold_s / zoo_warm_s : 0.0;
  std::printf("zoo train (cold)     : %8.3f s  (12 models)\n", zoo_cold_s);
  std::printf("zoo load (warm)      : %8.3f s  (%.2fx vs cold; %zu "
              "retrained)\n",
              zoo_warm_s, warm_speedup, warm.retrained.size());

  bool zoo_warm_identical = warm.retrained.empty();
  for (const auto& [name, cold_model] : zoo_cold.models) {
    if (!zoo_warm_identical) break;
    const ml::Regressor* warm_model = warm.zoo.find(name);
    if (warm_model == nullptr) {
      zoo_warm_identical = false;
      break;
    }
    std::ostringstream cold_bytes, warm_bytes;
    ml::save_model(cold_bytes, *cold_model);
    ml::save_model(warm_bytes, *warm_model);
    zoo_warm_identical = cold_bytes.str() == warm_bytes.str();
  }

  const double end_to_end_serial_s = campaign_serial_s + zoo_serial_s;
  const double end_to_end_parallel_s = campaign_s + zoo_parallel_s;
  const double end_to_end_speedup =
      end_to_end_parallel_s > 0.0
          ? end_to_end_serial_s / end_to_end_parallel_s
          : 0.0;
  std::printf("end-to-end           : %8.3f s serial, %.3f s parallel "
              "(%.2fx)\n",
              end_to_end_serial_s, end_to_end_parallel_s, end_to_end_speedup);

  // Where did the serial-vs-parallel gap go? Decompose each stage's
  // worker-seconds and walk the parallel arm's span graph.
  print_arm("campaign", jobs, campaign_serial_s, campaign_parallel_attr);
  print_arm("zoo", jobs, zoo_serial_s, zoo_parallel_attr);

  // --- Stage 3: set-F MLP validation, fast path vs pre-PR replica.
  // Both arms share one MlpOptions so the comparison isolates the
  // implementation, not the hyperparameters.
  ml::MlpOptions mlp = config.evaluation().zoo.mlp;
  mlp.hidden_units = core::hidden_units_for(core::FeatureSet::kF);
  const auto& columns = core::feature_set_columns(core::FeatureSet::kF);
  ml::ValidationOptions validation;
  validation.partitions = config.partitions;

  const ml::ModelFactory fast_factory =
      [&mlp](const linalg::Matrix& x,
             std::span<const double> y) -> ml::RegressorPtr {
    return std::make_unique<ml::MlpRegressor>(ml::MlpRegressor::fit(x, y, mlp));
  };
  const ml::ModelFactory legacy_factory =
      [&mlp](const linalg::Matrix& x,
             std::span<const double> y) -> ml::RegressorPtr {
    return LegacyMlp::fit(x, y, mlp);
  };

  t0 = std::chrono::steady_clock::now();
  const ml::ValidationResult legacy = ml::repeated_subsampling_validation(
      campaign.dataset, columns, legacy_factory, validation);
  const double legacy_s = seconds_since(t0);
  std::printf("validation (legacy)  : %8.3f s  (MPE %.3f%%, NRMSE %.3f)\n",
              legacy_s, legacy.test_mpe, legacy.test_nrmse);

  t0 = std::chrono::steady_clock::now();
  const ml::ValidationResult fast = ml::repeated_subsampling_validation(
      campaign.dataset, columns, fast_factory, validation);
  const double fast_s = seconds_since(t0);
  std::printf("validation (fast)    : %8.3f s  (MPE %.3f%%, NRMSE %.3f)\n",
              fast_s, fast.test_mpe, fast.test_nrmse);

  const double speedup = fast_s > 0.0 ? legacy_s / fast_s : 0.0;
  std::printf("validation speedup   : %8.2fx (%zu partitions, set F)\n",
              speedup, validation.partitions);

  // --- Equivalence gates.
  std::vector<Gate> gates;
  Rng rng(config.seed ^ 0x5eedULL);

  {  // (a) tiled GEMM vs the naive reference loop, odd non-square shapes.
    double worst = 0.0;
    const std::size_t shapes[][3] = {{17, 31, 23}, {64, 64, 64}, {1, 129, 7}};
    for (const auto& s : shapes) {
      const linalg::Matrix a = random_matrix(s[0], s[1], rng);
      const linalg::Matrix b = random_matrix(s[1], s[2], rng);
      const linalg::Matrix fast_c = linalg::matmul(a, b);
      const linalg::Matrix ref_c = linalg::matmul_naive(a, b);
      worst = std::max(worst, max_abs_diff(fast_c.data(), ref_c.data()));
    }
    gates.push_back({"matmul_vs_naive_max_abs_diff", worst, 1e-12});
  }

  {  // (b) batched loss/gradient vs the rowwise reference oracle.
    const std::size_t m = 37, inputs = 9, hidden = 13;
    const linalg::Matrix x = random_matrix(m, inputs, rng);
    std::vector<double> y(m);
    for (double& v : y) v = rng.uniform(-1.0, 1.0);
    ml::MlpNetwork net(inputs, hidden);
    Rng init(config.seed + 1);
    net.initialize(init);
    std::vector<double> g_fast(net.num_parameters());
    std::vector<double> g_ref(net.num_parameters());
    const double l_fast = net.loss_and_gradient(x, y, 1e-6, g_fast);
    const double l_ref = net.loss_and_gradient_reference(x, y, 1e-6, g_ref);
    const double worst =
        std::max(std::abs(l_fast - l_ref), max_abs_diff(g_fast, g_ref));
    gates.push_back({"batched_loss_vs_reference_max_abs_diff", worst, 1e-12});
  }

  // (c) fast vs legacy validation metrics. The two arms differ only in the
  // tanh implementation (|rel err| < 1e-15 per call), so trained models —
  // and the averaged validation metrics — must agree far inside a quarter
  // of a percentage point.
  gates.push_back(
      {"fast_vs_legacy_test_mpe_pp", std::abs(fast.test_mpe - legacy.test_mpe),
       0.25});
  gates.push_back({"fast_vs_legacy_test_nrmse_pp",
                   std::abs(fast.test_nrmse - legacy.test_nrmse), 0.25});

  // (e) the batched simulation kernels must replay their scalar oracles
  // bit-for-bit: the run-length-segmented trace batch, the marker-bitmap
  // profiler vs the Fenwick replica, and the SoA cache walk.
  gates.push_back({"trace_batch_bit_identical",
                   trace_batch_identical ? 0.0 : 1.0, 0.0});
  gates.push_back({"trace_profile_bit_identical",
                   profile_identical ? 0.0 : 1.0, 0.0});
  gates.push_back({"cache_batch_bit_identical",
                   cache_batch_identical ? 0.0 : 1.0, 0.0});

  // (f) the task-parallel orchestration layers must be byte-equivalent to
  // their serial counterparts: the campaign's sequenced collector and the
  // flattened model-zoo batch.
  gates.push_back({"campaign_parallel_bit_identical",
                   campaign_identical ? 0.0 : 1.0, 0.0});
  gates.push_back({"zoo_parallel_bit_identical", zoo_identical ? 0.0 : 1.0,
                   0.0});
  if (!jobs_scaling.empty()) {
    gates.push_back({"jobs_sweep_bit_identical",
                     jobs_sweep_identical ? 0.0 : 1.0, 0.0});
  }

  // (g) the store round-trip: models reloaded from the zoo bundle must be
  // byte-identical to the freshly trained zoo (and nothing retrained).
  gates.push_back({"zoo_warm_start_bit_identical",
                   zoo_warm_identical ? 0.0 : 1.0, 0.0});

  {  // (d) memoized contention solve must be bit-identical to a cold solve.
    const sim::ApplicationSpec cg = sim::find_application("cg");
    const std::vector<sim::ApplicationSpec> coapps(3, cg);
    const sim::RunMeasurement first =
        testbed.run_colocated(canneal, coapps, 0, /*repetition=*/11);
    const sim::RunMeasurement second =
        testbed.run_colocated(canneal, coapps, 0, /*repetition=*/11);
    gates.push_back({"solve_cache_bit_identical",
                     bitwise_equal(first.execution_time_s,
                                   second.execution_time_s)
                         ? 0.0
                         : 1.0,
                     0.0});
  }

  bool all_pass = true;
  std::printf("\nequivalence gates:\n");
  for (const Gate& g : gates) {
    all_pass = all_pass && g.pass();
    std::printf("  %-40s %s  (%.3e <= %.3e)\n", g.name,
                g.pass() ? "PASS" : "FAIL", g.value, g.limit);
  }

  auto& registry = obs::Registry::global();
  const std::uint64_t hits =
      registry.counter("sim_solve_cache_hits_total").value();
  const std::uint64_t misses =
      registry.counter("sim_solve_cache_misses_total").value();
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  std::printf("solve cache          : %llu hits / %llu misses (%.1f%%)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), 100.0 * hit_rate);
  const std::uint64_t memo_hits =
      registry.counter("sim_profile_memo_hits_total").value();
  const std::uint64_t memo_misses =
      registry.counter("sim_profile_memo_misses_total").value();
  std::printf("profile memo         : %llu hits / %llu misses\n",
              static_cast<unsigned long long>(memo_hits),
              static_cast<unsigned long long>(memo_misses));
  const std::uint64_t fused_restarts =
      registry.counter("scg_fused_restarts_total").value();
  const obs::Histogram& train_gemm = registry.histogram("train_gemm_seconds");
  const std::uint64_t design_hits =
      registry.counter("validation_design_memo_hits_total").value();
  const std::uint64_t design_misses =
      registry.counter("validation_design_memo_misses_total").value();
  std::printf("fused trainer        : %llu fused restarts, %.3f s in batched "
              "GEMM (%llu calls)\n",
              static_cast<unsigned long long>(fused_restarts),
              train_gemm.sum(),
              static_cast<unsigned long long>(train_gemm.count()));
  std::printf("design memo          : %llu hits / %llu misses\n",
              static_cast<unsigned long long>(design_hits),
              static_cast<unsigned long long>(design_misses));

  std::ofstream os(out_path, std::ios::trunc);
  if (os) {
    os.precision(17);
    os << "{\n"
       << "  \"program\": \"bench_perf_pipeline\",\n"
       << "  \"partitions\": " << validation.partitions << ",\n"
       << "  \"nn_iterations\": " << mlp.max_iterations << ",\n"
       << "  \"seed\": " << config.seed << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"sweep_scale\": " << config.sweep_scale << ",\n"
       << "  \"restarts\": " << config.restarts << ",\n"
       << "  \"zoo_race_restarts\": " << zoo_race_restarts << ",\n"
       << "  \"timings_s\": {\n"
       << "    \"trace_generate\": " << generate_s << ",\n"
       << "    \"trace_profile\": " << profile_s << ",\n"
       << "    \"trace_profile_legacy\": " << legacy_profile_s << ",\n"
       << "    \"campaign_serial\": " << campaign_serial_s << ",\n"
       << "    \"campaign_parallel\": " << campaign_s << ",\n"
       << "    \"zoo_serial\": " << zoo_serial_s << ",\n"
       << "    \"zoo_parallel\": " << zoo_parallel_s << ",\n"
       << "    \"zoo_train_cold\": " << zoo_cold_s << ",\n"
       << "    \"zoo_load_warm\": " << zoo_warm_s << ",\n"
       << "    \"end_to_end_serial\": " << end_to_end_serial_s << ",\n"
       << "    \"end_to_end_parallel\": " << end_to_end_parallel_s << ",\n"
       << "    \"validation_legacy\": " << legacy_s << ",\n"
       << "    \"validation_fast\": " << fast_s << "\n  },\n"
       << "  \"kernel_speedup\": " << kernel_speedup << ",\n"
       << "  \"campaign_speedup\": " << campaign_speedup << ",\n";
    os << "  \"jobs_scaling\": [\n";
    for (std::size_t i = 0; i < jobs_scaling.size(); ++i) {
      const JobsScalingPoint& p = jobs_scaling[i];
      os << "    {\"jobs\": " << p.jobs << ", \"wall_s\": " << p.wall_s
         << ", \"speedup_vs_serial\": " << p.speedup_vs_serial
         << ", \"bit_identical\": " << (p.bit_identical ? "true" : "false")
         << "}" << (i + 1 == jobs_scaling.size() ? "\n" : ",\n");
    }
    os << "  ],\n"
       << "  \"zoo_speedup\": " << zoo_speedup << ",\n"
       << "  \"zoo_warm_start_speedup\": " << warm_speedup << ",\n"
       << "  \"zoo_bundle_digest\": \"" << saved.bundle_digest << "\",\n"
       << "  \"zoo_models_retrained\": " << warm.retrained.size() << ",\n"
       << "  \"end_to_end_speedup\": " << end_to_end_speedup << ",\n"
       << "  \"validation_speedup\": " << speedup << ",\n"
       << "  \"fast\": {\"test_mpe\": " << fast.test_mpe
       << ", \"test_nrmse\": " << fast.test_nrmse << "},\n"
       << "  \"legacy\": {\"test_mpe\": " << legacy.test_mpe
       << ", \"test_nrmse\": " << legacy.test_nrmse << "},\n"
       << "  \"solve_cache\": {\"hits\": " << hits << ", \"misses\": "
       << misses << ", \"hit_rate\": " << hit_rate << "},\n"
       << "  \"profile_memo\": {\"hits\": " << memo_hits << ", \"misses\": "
       << memo_misses << "},\n"
       << "  \"training\": {\"scg_fused_restarts_total\": " << fused_restarts
       << ", \"train_gemm_seconds_sum\": " << train_gemm.sum()
       << ", \"train_gemm_seconds_count\": " << train_gemm.count()
       << ", \"design_memo_hits\": " << design_hits
       << ", \"design_memo_misses\": " << design_misses << "},\n"
       << "  \"attribution\": {\n";
    json_arm(os, "campaign", jobs, campaign_serial_s, campaign_serial_attr,
             campaign_parallel_attr, /*last=*/false);
    json_arm(os, "zoo", jobs, zoo_serial_s, zoo_serial_attr,
             zoo_parallel_attr, /*last=*/true);
    os << "  },\n"
       << "  \"equivalence\": [\n";
    for (std::size_t i = 0; i < gates.size(); ++i)
      json_gate(os, gates[i], i + 1 == gates.size());
    os << "  ],\n"
       << "  \"equivalence_ok\": " << (all_pass ? "true" : "false") << "\n"
       << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", out_path.c_str());
  }

  return all_pass ? 0 : 1;
}
