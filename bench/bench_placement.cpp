// Placement-service + cluster-replay harness (DESIGN.md §12).
//
// Two arms:
//
//   1. Query throughput — predict_batch over a loaded 64-node fleet,
//      measuring sustained predictions/sec (target: >= 1M/s, i.e. a
//      sub-microsecond amortized hot path) and the batched query latency
//      distribution (p50/p99 from the placement_predict_seconds log-2
//      histogram delta).
//   2. Cluster replay — one seeded million-arrival stream replayed across
//      the fleet under every placement policy through the discrete-event
//      simulator, reporting per-policy mean/max slowdown, deadline-miss
//      rate, energy, and replay wall time.
//
// Writes a machine-readable BENCH_placement.json (override with
// --out=FILE). The exit status reflects ONLY the correctness gates —
// never timing — so CI can run this on noisy shared runners:
//   gate interference_beats_first_fit    IA mean slowdown < first-fit
//   gate interference_beats_least_loaded IA mean slowdown < least-loaded
//   gate replay_deterministic            IA replayed twice (inside the
//                                        parallel policy sweep and again
//                                        standalone) -> identical
//                                        JobOutcome streams
//   gate score_cache_transparent         IA with the score memo disabled
//                                        -> identical placements
//   gate zoo_warm_start_identical        IA with the predictor reloaded
//                                        from a store zoo bundle ->
//                                        identical placements
//
// Scale flags: --arrivals (default 1'000'000; --quick 20'000), --nodes
// (default 64; --quick 16), --utilization (default 0.5).
//
// Headline run (Release build):
//   ./build/bench/bench_placement --jobs=0
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "sched/cluster.hpp"
#include "serve/demo_fleet.hpp"
#include "serve/event_sim.hpp"
#include "serve/placement_service.hpp"
#include "store/file_ops.hpp"
#include "store/zoo_store.hpp"

namespace {

using namespace coloc;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Gate {
  const char* name;
  bool pass = false;
  std::string detail;
};

/// Exact (bitwise) equality of two replay outcomes' job streams.
bool same_outcomes(const serve::ReplayOutcome& a,
                   const serve::ReplayOutcome& b) {
  if (a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const serve::JobOutcome& x = a.jobs[i];
    const serve::JobOutcome& y = b.jobs[i];
    if (x.node != y.node || x.pstate != y.pstate ||
        x.deadline_met != y.deadline_met || x.arrival_s != y.arrival_s ||
        x.start_s != y.start_s || x.finish_s != y.finish_s ||
        x.slowdown != y.slowdown) {
      return false;
    }
  }
  return a.makespan_s == b.makespan_s &&
         a.total_energy_j == b.total_energy_j;
}

/// Bucket-delta quantile of placement_predict_seconds between snapshots.
double predict_quantile(const obs::MetricsSnapshot& before,
                        const obs::MetricsSnapshot& after, double q) {
  const obs::MetricSample* b = before.find("placement_predict_seconds");
  const obs::MetricSample* a = after.find("placement_predict_seconds");
  if (a == nullptr) return 0.0;
  std::vector<std::uint64_t> delta = a->histogram_buckets;
  if (b != nullptr) {
    for (std::size_t i = 0; i < delta.size() &&
                            i < b->histogram_buckets.size(); ++i) {
      delta[i] -= b->histogram_buckets[i];
    }
  }
  return obs::Histogram::quantile_from_counts(delta, q);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());
  const std::string out_path = args.get("out", "BENCH_placement.json");

  const std::size_t nodes = static_cast<std::size_t>(
      args.get_int("nodes", config.quick ? 16 : 64));
  const std::size_t arrivals = static_cast<std::size_t>(
      args.get_int("arrivals", config.quick ? 20'000 : 1'000'000));
  const double utilization = args.get_double("utilization", 0.5);

  // --- Pipeline: quick campaign -> deployable nn-F predictor.
  const sim::MachineConfig machine = serve::demo::fleet_node();
  sim::AppMrcLibrary library;
  auto t0 = std::chrono::steady_clock::now();
  const serve::demo::DemoPipeline pipeline = serve::demo::build_pipeline(
      library, machine, config.zoo_in, config.jobs);
  const std::vector<sim::ApplicationSpec> catalog = serve::demo::catalog();
  const double train_s = seconds_since(t0);
  std::printf("pipeline (campaign+train): %8.3f s  (%zu rows)\n", train_s,
              pipeline.campaign.dataset.num_rows());

  const auto register_catalog = [&](serve::PlacementService& service) {
    for (const sim::ApplicationSpec& spec : catalog) {
      service.register_app(pipeline.campaign.baselines.at(spec.name));
    }
  };

  // --- Arm 1: query throughput over a loaded fleet.
  serve::PlacementService service(&pipeline.predictor);
  register_catalog(service);
  service.reset_fleet(nodes);
  // Deterministically pre-load ~2 residents/node so queries see real
  // co-location features, not empty-node shortcuts.
  for (std::size_t n = 0; n < nodes; ++n) {
    service.add_resident(n, static_cast<serve::AppId>(n % catalog.size()));
    service.add_resident(n,
                         static_cast<serve::AppId>((n + 3) % catalog.size()));
  }
  const std::size_t batch = 4096;
  const std::size_t total_predictions = config.quick ? 1'000'000 : 8'000'000;
  std::vector<serve::AppId> targets(batch);
  std::vector<std::uint32_t> query_nodes(batch);
  std::vector<double> times(batch);
  for (std::size_t k = 0; k < batch; ++k) {
    targets[k] = static_cast<serve::AppId>(k % catalog.size());
    query_nodes[k] = static_cast<std::uint32_t>((k * 7) % nodes);
  }
  const obs::MetricsSnapshot before = obs::Registry::global().snapshot();
  double checksum = 0.0;
  t0 = std::chrono::steady_clock::now();
  std::size_t issued = 0;
  while (issued < total_predictions) {
    service.predict_batch(targets, query_nodes, 0, times);
    checksum += times[issued % batch];
    issued += batch;
  }
  const double predict_wall_s = seconds_since(t0);
  const obs::MetricsSnapshot after = obs::Registry::global().snapshot();
  const double predictions_per_sec =
      static_cast<double>(issued) / predict_wall_s;
  const double p50 = predict_quantile(before, after, 0.50);
  const double p99 = predict_quantile(before, after, 0.99);
  std::printf(
      "predict throughput   : %8.2f M predictions/s  (%zu in %.3f s, "
      "batch %zu, checksum %.3f)\n",
      predictions_per_sec / 1e6, issued, predict_wall_s, batch, checksum);
  std::printf("query latency        : p50 %.3g s  p99 %.3g s  (batched, "
              "log-2 bucket resolution)\n", p50, p99);

  // --- Arm 2: policy replay of one seeded arrival stream.
  double mean_service_s = 0.0;
  for (const sim::ApplicationSpec& spec : catalog) {
    mean_service_s +=
        pipeline.campaign.baselines.at(spec.name).execution_time_s[0];
  }
  mean_service_s /= static_cast<double>(catalog.size());
  const double mean_interarrival_s =
      mean_service_s / (static_cast<double>(nodes * machine.cores) *
                        utilization);
  const std::vector<serve::Job> stream = serve::make_job_stream(
      catalog.size(), arrivals, mean_interarrival_s, config.seed);

  serve::EventSimConfig sim_config;
  sim_config.node = machine;
  sim_config.nodes = nodes;

  const std::vector<sched::PlacementPolicy>& policies =
      sched::all_placement_policies();
  std::vector<serve::ReplayOutcome> results(policies.size());
  std::vector<double> replay_wall_s(policies.size(), 0.0);
  const auto replay_policy = [&](sched::PlacementPolicy policy,
                                 serve::ServiceOptions options)
      -> serve::ReplayOutcome {
    serve::PlacementService policy_service(&pipeline.predictor, options);
    register_catalog(policy_service);
    serve::EventSimulator sim(sim_config, &library, catalog,
                              &policy_service, &pipeline.campaign.baselines);
    return sim.replay(stream, policy);
  };
  t0 = std::chrono::steady_clock::now();
  parallel_for(global_pool(), policies.size(), [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    results[i] = replay_policy(policies[i], serve::ServiceOptions{});
    replay_wall_s[i] = seconds_since(start);
  });
  const double replay_total_s = seconds_since(t0);
  std::printf("replay (%zu arrivals x %zu nodes): %8.3f s total\n", arrivals,
              nodes, replay_total_s);
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const serve::ReplayOutcome& r = results[i];
    std::printf(
        "  %-18s : slowdown mean %.4f max %.3f, deadline miss %.4f, "
        "energy %.3f MJ, %.3f s wall\n",
        sched::to_string(policies[i]).c_str(), r.mean_slowdown,
        r.max_slowdown, r.deadline_miss_rate, r.total_energy_j / 1e6,
        replay_wall_s[i]);
  }

  const serve::ReplayOutcome& first_fit = results[0];
  const serve::ReplayOutcome& least_loaded = results[1];
  const serve::ReplayOutcome& interference = results[2];

  // --- Gates.
  std::vector<Gate> gates;
  const auto add_gate = [&gates](const char* name, bool pass,
                                 std::string detail) {
    gates.push_back(Gate{name, pass, std::move(detail)});
    std::printf("gate %-32s: %s  (%s)\n", name, pass ? "PASS" : "FAIL",
                gates.back().detail.c_str());
  };
  char buf[160];
  std::snprintf(buf, sizeof buf, "%.4f vs %.4f",
                interference.mean_slowdown, first_fit.mean_slowdown);
  add_gate("interference_beats_first_fit",
           interference.mean_slowdown < first_fit.mean_slowdown, buf);
  std::snprintf(buf, sizeof buf, "%.4f vs %.4f",
                interference.mean_slowdown, least_loaded.mean_slowdown);
  add_gate("interference_beats_least_loaded",
           interference.mean_slowdown < least_loaded.mean_slowdown, buf);

  // Determinism: the IA replay from the parallel sweep above must equal a
  // standalone serial re-run on fresh service/simulator instances.
  const serve::ReplayOutcome rerun = replay_policy(
      sched::PlacementPolicy::kInterferenceAware, serve::ServiceOptions{});
  add_gate("replay_deterministic", same_outcomes(interference, rerun),
           "parallel-sweep vs standalone replay");

  // Cache transparency + warm start run at reduced scale: both disable
  // the throughput optimizations under test, and identity at any scale is
  // the property being proven.
  const std::size_t small = std::min<std::size_t>(arrivals, 20'000);
  const std::vector<serve::Job> small_stream(stream.begin(),
                                             stream.begin() +
                                                 static_cast<long>(small));
  const auto replay_small = [&](serve::ServiceOptions options,
                                const core::ColocationPredictor* predictor)
      -> serve::ReplayOutcome {
    serve::PlacementService s(predictor, options);
    register_catalog(s);
    serve::EventSimulator sim(sim_config, &library, catalog, &s,
                              &pipeline.campaign.baselines);
    return sim.replay(small_stream,
                      sched::PlacementPolicy::kInterferenceAware);
  };
  const serve::ReplayOutcome cached =
      replay_small(serve::ServiceOptions{}, &pipeline.predictor);
  serve::ServiceOptions no_cache;
  no_cache.enable_score_cache = false;
  const serve::ReplayOutcome uncached =
      replay_small(no_cache, &pipeline.predictor);
  add_gate("score_cache_transparent", same_outcomes(cached, uncached),
           "memo on vs off, identical placements");

  // Warm start: persist the trained model as a store zoo bundle, reload it
  // through the service loader, and replay — placements must be identical
  // because verified entries round-trip bit-identically.
  const std::string bundle_dir =
      !config.zoo_out.empty() ? config.zoo_out
                              : std::string("BENCH_placement_zoo");
  const std::string model_name = pipeline.predictor.id().name();
  store::save_zoo(store::FileOps::real(), bundle_dir,
                  {{model_name, &pipeline.predictor.model()}},
                  {{"machine", machine.name}});
  const core::ColocationPredictor reloaded = serve::load_bundle_predictor(
      store::FileOps::real(), bundle_dir, pipeline.predictor.id());
  const serve::ReplayOutcome warm =
      replay_small(serve::ServiceOptions{}, &reloaded);
  add_gate("zoo_warm_start_identical", same_outcomes(cached, warm),
           "bundle " + bundle_dir);

  // --- BENCH_placement.json.
  bool all_pass = true;
  for (const Gate& g : gates) all_pass = all_pass && g.pass;
  std::ofstream os(out_path, std::ios::trunc);
  os << "{\n"
     << "  \"bench\": \"placement\",\n"
     << "  \"nodes\": " << nodes << ",\n"
     << "  \"arrivals\": " << arrivals << ",\n"
     << "  \"seed\": " << config.seed << ",\n"
     << "  \"utilization_target\": " << utilization << ",\n"
     << "  \"train_seconds\": " << train_s << ",\n"
     << "  \"predictions_per_sec\": " << predictions_per_sec << ",\n"
     << "  \"predict_batch\": " << batch << ",\n"
     << "  \"query_latency_p50_s\": " << p50 << ",\n"
     << "  \"query_latency_p99_s\": " << p99 << ",\n"
     << "  \"replay_total_seconds\": " << replay_total_s << ",\n"
     << "  \"policies\": {\n";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const serve::ReplayOutcome& r = results[i];
    os << "    \"" << sched::to_string(policies[i]) << "\": {"
       << "\"mean_slowdown\": " << r.mean_slowdown
       << ", \"max_slowdown\": " << r.max_slowdown
       << ", \"mean_wait_s\": " << r.mean_wait_s
       << ", \"deadline_miss_rate\": " << r.deadline_miss_rate
       << ", \"energy_j\": " << r.total_energy_j
       << ", \"makespan_s\": " << r.makespan_s
       << ", \"events\": " << r.events_processed
       << ", \"contention_solves\": " << r.contention_solves
       << ", \"wall_seconds\": " << replay_wall_s[i] << "}"
       << (i + 1 < policies.size() ? ",\n" : "\n");
  }
  os << "  },\n"
     << "  \"gates\": {\n";
  for (std::size_t i = 0; i < gates.size(); ++i) {
    os << "    \"" << gates[i].name << "\": "
       << (gates[i].pass ? "true" : "false")
       << (i + 1 < gates.size() ? ",\n" : "\n");
  }
  os << "  },\n"
     << "  \"all_gates_pass\": " << (all_pass ? "true" : "false") << "\n"
     << "}\n";
  os.close();
  std::printf("wrote %s (%s)\n", out_path.c_str(),
              all_pass ? "all gates pass" : "GATE FAILURES");
  return all_pass ? 0 : 1;
}
