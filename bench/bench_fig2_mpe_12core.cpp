// Regenerates Figure 2: MPE of all twelve models on the 12-core
// Xeon E5-2697 v2.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());
  bench::MachineExperiment experiment(sim::xeon_e5_2697v2(), config);
  experiment.print_figure(
      "Figure 2: MPE vs feature set, 12-core Xeon E5-2697 v2",
      core::Metric::kMpe);
  return 0;
}
