// Regenerates Table VI: canneal's performance degradation from increasing
// numbers of co-located cg instances on the 12-core Xeon E5-2697 v2, with
// the per-row prediction error (MPE) of the linear-F and NN-F models.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());

  bench::MachineExperiment experiment(sim::xeon_e5_2697v2(), config);
  const core::CampaignResult& campaign = experiment.campaign();

  // Train the two full-featured models on the campaign data.
  core::ModelZooOptions zoo = config.evaluation().zoo;
  const core::ColocationPredictor linear_f = core::ColocationPredictor::train(
      campaign.dataset, {core::ModelTechnique::kLinear, core::FeatureSet::kF},
      zoo);
  const core::ColocationPredictor nn_f = core::ColocationPredictor::train(
      campaign.dataset,
      {core::ModelTechnique::kNeuralNetwork, core::FeatureSet::kF}, zoo);

  const sim::ApplicationSpec canneal = sim::find_application("canneal");
  const sim::ApplicationSpec cg = sim::find_application("cg");
  const core::BaselineProfile& canneal_base =
      campaign.baselines.at("canneal");
  const core::BaselineProfile& cg_base = campaign.baselines.at("cg");

  const std::size_t pstate = 0;  // highest frequency
  const double baseline_s = canneal_base.time_at(pstate);
  std::printf("canneal baseline execution time at P0: %.0f s\n\n",
              baseline_s);

  TextTable table(
      "Table VI: canneal co-located with cg on the 12-core Xeon E5-2697 v2");
  table.set_columns({"num. co-located cg", "exec time (s)",
                     "normalized exec time", "linear-F MPE (%)",
                     "nn-F MPE (%)"});
  for (std::size_t n = 1; n < experiment.machine().cores; ++n) {
    const std::vector<sim::ApplicationSpec> coapps(n, cg);
    const sim::RunMeasurement m =
        experiment.simulator().run_colocated(canneal, coapps, pstate,
                                             /*repetition=*/1);
    const std::vector<const core::BaselineProfile*> co_profiles(n, &cg_base);
    const double pred_linear =
        linear_f.predict_time(canneal_base, co_profiles, pstate);
    const double pred_nn = nn_f.predict_time(canneal_base, co_profiles,
                                             pstate);
    auto mpe = [&m](double pred) {
      return 100.0 * std::abs(pred - m.execution_time_s) /
             m.execution_time_s;
    };
    table.add_row({TextTable::num(n), TextTable::num(m.execution_time_s, 0),
                   TextTable::num(m.execution_time_s / baseline_s, 2),
                   TextTable::num(mpe(pred_linear), 2),
                   TextTable::num(mpe(pred_nn), 2)});
  }
  table.print(std::cout);
  std::printf(
      "Expected shape (paper): monotone growth in normalized time with\n"
      "co-runner count (paper reaches 1.33x at 11 co-runners), with the\n"
      "NN-F rows far more accurate than linear-F.\n");
  return 0;
}
