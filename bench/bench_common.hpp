// Shared plumbing for the experiment harnesses: every bench binary
// regenerates one table or figure of the paper. Common CLI flags:
//   --partitions=N      validation partitions (default 10; paper uses 100)
//   --nn-iters=N        SCG iterations per network (default 1500)
//   --seed=N            master seed for the simulated testbed noise
//   --quick             tiny configuration for smoke runs
//   --metrics-out=FILE  write a metrics snapshot at exit (.json or text)
//   --trace-out=FILE    write a chrome://tracing span file (+ CSV twin)
//
// Every bench main holds one obs::ObsSession built from run_session();
// besides honoring the flags above it prints a machine-readable
// "total_wall_time_s=... peak_rss_mb=..." cost line when the run ends.
#pragma once

#include <cstdint>
#include <string>

#include "common/cli.hpp"
#include "core/methodology.hpp"
#include "core/report.hpp"
#include "obs/session.hpp"
#include "sim/execution.hpp"

namespace coloc::bench {

struct HarnessConfig {
  std::size_t partitions = 10;
  std::size_t nn_iterations = 1500;
  std::uint64_t seed = 99;
  bool quick = false;
  std::string metrics_out;  // --metrics-out
  std::string trace_out;    // --trace-out
  std::string program = "bench";

  static HarnessConfig from_cli(const CliArgs& args);

  core::EvaluationConfig evaluation() const;

  /// Observability options for this run (pass to obs::ObsSession).
  obs::ObsOptions run_session() const;
};

/// One machine's full pipeline: MRC profiling, Table V campaign, and the
/// 12-model evaluation suite. Construction runs the campaign.
class MachineExperiment {
 public:
  MachineExperiment(sim::MachineConfig machine, const HarnessConfig& config);

  const sim::MachineConfig& machine() const { return machine_; }
  const core::CampaignResult& campaign() const { return campaign_; }
  sim::Simulator& simulator() { return simulator_; }

  /// Evaluates all twelve models (optionally retaining one model's
  /// held-out predictions for Figure 5b).
  core::EvaluationSuite evaluate(
      std::optional<core::ModelId> collect_for = std::nullopt) const;

  /// Prints one figure (Figures 1-4): the metric across sets A-F for both
  /// techniques, training and testing error.
  void print_figure(const std::string& title, core::Metric metric) const;

 private:
  HarnessConfig config_;
  sim::MachineConfig machine_;
  sim::AppMrcLibrary library_;
  sim::Simulator simulator_;
  core::CampaignResult campaign_;
};

}  // namespace coloc::bench
