// Shared plumbing for the experiment harnesses: every bench binary
// regenerates one table or figure of the paper. Common CLI flags:
//   --partitions=N      validation partitions (default 10; paper uses 100)
//   --nn-iters=N        SCG iterations per network (default 1500)
//   --seed=N            master seed for the simulated testbed noise
//   --quick             tiny configuration for smoke runs
//   --jobs=N            worker threads for campaign + validation
//                       (0 = auto; overrides COLOC_JOBS; results are
//                       bit-identical at any value)
//   --restarts=N        SCG restarts per network fit, in [1, 64] (default
//                       1; the winner is the lowest-loss restart, fused
//                       into batched kernels unless disabled)
//   --no-parallel-restarts  keep restarts off the worker pool AND off the
//                       fused batched path (the historical serial loop)
//   --sweep-scale=N     multiply the campaign sweep N-fold (cloned targets)
//   --jobs-sweep=LIST   comma-separated jobs values to re-run the campaign
//                       at (bench_perf_pipeline; emits jobs_scaling JSON)
//   --metrics-out=FILE  write a metrics snapshot at exit (.json or text)
//   --trace-out=FILE    write a chrome://tracing span file (+ CSV twin)
//   --bundle-out=DIR    write a full run bundle: DIR/manifest.json +
//                       DIR/metrics.json + DIR/trace.json (consumed by
//                       tools/obs_report; overrides the two flags above)
//
// Robustness flags (see the Robustness section in README.md):
//   --fault-rate=P      inject faults at rate P (overrides COLOC_FAULT_RATE)
//   --checkpoint=FILE   checkpoint campaign cells (per-machine suffix added)
//   --checkpoint-every=N  cells between periodic checkpoint flushes
//   --resume            load the checkpoint and skip measured cells
//
// Every bench main holds one obs::ObsSession built from run_session();
// besides honoring the flags above it prints a machine-readable
// "total_wall_time_s=... peak_rss_mb=..." cost line when the run ends.
#pragma once

#include <cstdint>
#include <string>

#include "common/cli.hpp"
#include "core/campaign.hpp"
#include "core/methodology.hpp"
#include "core/report.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "obs/session.hpp"
#include "sim/execution.hpp"

namespace coloc::bench {

struct HarnessConfig {
  std::size_t partitions = 10;
  std::size_t nn_iterations = 1500;
  std::uint64_t seed = 99;
  bool quick = false;
  /// --jobs: worker threads for the campaign and validation stages.
  /// 0 = auto (COLOC_JOBS env, else hardware concurrency). A non-zero
  /// value also becomes the process-wide coloc::configured_jobs().
  std::size_t jobs = 0;
  std::string metrics_out;  // --metrics-out
  std::string trace_out;    // --trace-out
  std::string bundle_out;   // --bundle-out (bundle dir; wins over both)
  std::string program = "bench";
  double fault_rate = -1.0;  // --fault-rate; < 0 defers to COLOC_FAULT_RATE
  std::string fault_kinds;   // --fault-kinds; "" defers to COLOC_FAULT_KINDS
  std::string checkpoint;    // --checkpoint; "" disables checkpointing
  std::size_t checkpoint_every = 25;  // --checkpoint-every
  bool resume = false;                // --resume
  std::string zoo_out;  // --zoo-out: save the trained zoo bundle here
  std::string zoo_in;   // --zoo-in: load (and repair) a zoo bundle from here
  /// --sweep-scale=N: multiply the campaign sweep by N (each target app is
  /// cloned N-1 times under derived names), exercising orchestration at
  /// 10-100x the paper's cell count. 1 = the paper sweep.
  std::size_t sweep_scale = 1;
  /// --jobs-sweep=1,2,4,8: re-run the campaign at each listed jobs value
  /// and emit a jobs_scaling curve (bench_perf_pipeline only).
  std::string jobs_sweep;
  /// --restarts=N: SCG restarts per network fit, validated into [1, 64].
  /// Per-restart RNG streams make the result independent of how the
  /// restarts are executed (sequential, pooled, or fused).
  std::size_t restarts = 1;
  /// --no-parallel-restarts: pin fits to the historical serial restart
  /// loop (no pool fan-out, no fused batched kernels).
  bool no_parallel_restarts = false;

  static HarnessConfig from_cli(const CliArgs& args);

  core::EvaluationConfig evaluation() const;

  /// Observability options for this run (pass to obs::ObsSession).
  obs::ObsOptions run_session() const;

  /// Fault plan for this run: COLOC_FAULT_* environment overridden by
  /// --fault-rate when the flag was given.
  fault::FaultPlanConfig fault_plan() const;

  /// Campaign resilience knobs. The checkpoint path gets a sanitized
  /// per-machine suffix so multi-machine benches never share state files.
  core::CampaignRobustness robustness(const std::string& machine_name) const;
};

/// One machine's full pipeline: MRC profiling, Table V campaign, and the
/// 12-model evaluation suite. Construction runs the campaign.
class MachineExperiment {
 public:
  MachineExperiment(sim::MachineConfig machine, const HarnessConfig& config);

  const sim::MachineConfig& machine() const { return machine_; }
  const core::CampaignResult& campaign() const { return campaign_; }
  sim::Simulator& simulator() { return simulator_; }

  /// Evaluates all twelve models (optionally retaining one model's
  /// held-out predictions for Figure 5b).
  core::EvaluationSuite evaluate(
      std::optional<core::ModelId> collect_for = std::nullopt) const;

  /// Prints one figure (Figures 1-4): the metric across sets A-F for both
  /// techniques, training and testing error.
  void print_figure(const std::string& title, core::Metric metric) const;

 private:
  HarnessConfig config_;
  sim::MachineConfig machine_;
  sim::AppMrcLibrary library_;
  sim::Simulator simulator_;
  fault::FaultPlan plan_;
  fault::FaultInjector injector_;  // pass-through when the rate is zero
  core::CampaignResult campaign_;
};

}  // namespace coloc::bench
