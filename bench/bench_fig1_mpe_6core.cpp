// Regenerates Figure 1: MPE of all twelve models (linear & neural network,
// feature sets A-F), training and testing error, on the 6-core Xeon E5649.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());
  bench::MachineExperiment experiment(sim::xeon_e5649(), config);
  experiment.print_figure(
      "Figure 1: MPE vs feature set, 6-core Xeon E5649", core::Metric::kMpe);
  return 0;
}
