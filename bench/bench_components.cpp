// Component microbenchmarks (google-benchmark): throughput of the
// substrate pieces that every experiment leans on — trace generation,
// cache simulation, stack-distance profiling, contention solving, QR
// least squares, and one SCG training epoch.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "obs/session.hpp"
#include "linalg/qr.hpp"
#include "ml/mlp.hpp"
#include "sim/cache.hpp"
#include "sim/contention.hpp"
#include "sim/stack_distance.hpp"
#include "sim/trace.hpp"

namespace {

using namespace coloc;

sim::TraceSpec mixed_spec(std::size_t ws) {
  sim::TraceSpec spec;
  spec.name = "bench";
  sim::Phase p;
  p.working_set_lines = ws;
  p.mix = {.streaming = 0.3, .strided = 0.2, .hot_cold = 0.4,
           .pointer = 0.1};
  spec.phases = {p};
  return spec;
}

void BM_TraceGeneration(benchmark::State& state) {
  sim::TraceGenerator gen(mixed_spec(1 << 16), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void BM_CacheAccess(benchmark::State& state) {
  sim::CacheConfig config;
  config.size_bytes = static_cast<std::size_t>(state.range(0)) << 10;
  config.line_bytes = 64;
  config.associativity = 16;
  sim::Cache cache(config);
  sim::TraceGenerator gen(mixed_spec(1 << 16), 2);
  const auto trace = gen.generate(1 << 16);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(trace[i++ & 0xFFFF]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(256)->Arg(2048)->Arg(12288);

void BM_StackDistanceProfiling(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  sim::TraceGenerator gen(mixed_spec(1 << 14), 3);
  const auto trace = gen.generate(n);
  for (auto _ : state) {
    sim::StackDistanceProfiler profiler(n);
    for (auto a : trace) profiler.record(a);
    benchmark::DoNotOptimize(profiler.cold_misses());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StackDistanceProfiling);

void BM_MrcQuery(benchmark::State& state) {
  sim::TraceGenerator gen(mixed_spec(1 << 14), 4);
  const auto trace = gen.generate(1 << 16);
  sim::StackDistanceProfiler profiler(trace.size());
  for (auto a : trace) profiler.record(a);
  const sim::MissRatioCurve curve =
      sim::MissRatioCurve::from_profiler(profiler);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.miss_ratio(rng.uniform(1.0, 20000.0)));
  }
}
BENCHMARK(BM_MrcQuery);

void BM_ContentionSolve(benchmark::State& state) {
  const std::size_t napps = static_cast<std::size_t>(state.range(0));
  sim::ApplicationSpec spec;
  spec.name = "a";
  spec.refs_per_instruction = 0.02;
  spec.compulsory_misses_per_instruction = 1e-3;
  const sim::MissRatioCurve mrc = sim::MissRatioCurve::from_points(
      {1000, 10000, 100000, 1000000}, {0.9, 0.5, 0.2, 0.05});
  std::vector<sim::ScheduledApp> apps(napps,
                                      sim::ScheduledApp{&spec, &mrc});
  const sim::MachineConfig machine = sim::xeon_e5_2697v2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::solve_contention(machine, 2.7, apps));
  }
}
BENCHMARK(BM_ContentionSolve)->Arg(2)->Arg(6)->Arg(12);

void BM_QrLeastSquares(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  linalg::Matrix a(rows, 9);
  std::vector<double> b(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < 9; ++c) a(r, c) = rng.normal();
    b[r] = rng.normal();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::least_squares(a, b));
  }
}
BENCHMARK(BM_QrLeastSquares)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MlpGradient(benchmark::State& state) {
  Rng rng(7);
  ml::MlpNetwork net(8, 20);
  net.initialize(rng);
  const std::size_t rows = 1024;
  linalg::Matrix x(rows, 8);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < 8; ++c) x(r, c) = rng.normal();
    y[r] = rng.normal();
  }
  std::vector<double> grad(net.num_parameters());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.loss_and_gradient(x, y, 1e-6, grad));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_MlpGradient);

}  // namespace

// Expanded BENCHMARK_MAIN so the run also emits the standard cost line
// (total wall time + peak RSS) that BENCH_* trajectories track.
int main(int argc, char** argv) {
  obs::ObsOptions obs_options;
  obs_options.report_resources = true;
  obs_options.label = "bench_components";
  const obs::ObsSession session(obs_options);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
