// Regenerates Table IV: the multicore processors used for validation,
// plus the derived simulator parameters (private filter, bandwidth,
// unloaded latency) that the substitution documents in DESIGN.md.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/report.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());
  const std::vector<sim::MachineConfig> machines = {sim::xeon_e5649(),
                                                    sim::xeon_e5_2697v2()};
  core::render_table4(machines).print(std::cout);

  TextTable detail("Simulator substrate parameters (per DESIGN.md)");
  detail.set_columns({"processor", "private cache", "mem BW (GB/s)",
                      "unloaded latency (ns)", "LLC assoc", "P-states"});
  for (const auto& m : machines) {
    detail.add_row({m.name,
                    std::to_string(m.private_bytes >> 10) + "KB/core",
                    TextTable::num(m.memory_bandwidth_gbs, 1),
                    TextTable::num(m.memory_latency_ns, 0),
                    TextTable::num(m.llc_associativity),
                    TextTable::num(m.pstates.size())});
  }
  detail.print(std::cout);

  TextTable pstates("P-state ladders (frequency GHz @ voltage)");
  pstates.set_columns({"processor", "P0", "P1", "P2", "P3", "P4", "P5"});
  for (const auto& m : machines) {
    std::vector<std::string> row = {m.name};
    for (std::size_t p = 0; p < m.pstates.size(); ++p) {
      row.push_back(TextTable::num(m.pstates[p].frequency_ghz, 2) + "@" +
                    TextTable::num(m.pstates[p].voltage, 2) + "V");
    }
    pstates.add_row(std::move(row));
  }
  pstates.print(std::cout);
  return 0;
}
