// Regenerates Table III: the eleven benchmark applications, their suites,
// memory-intensity classes, and measured baseline memory intensities.
// Also verifies the paper's observation that intensities "do not vary
// widely between the machines we tested" by printing both processors.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/features.hpp"
#include "core/report.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());

  const auto apps = sim::benchmark_suite();
  sim::AppMrcLibrary library;
  library.profile_all(apps);

  for (const auto& machine : {sim::xeon_e5649(), sim::xeon_e5_2697v2()}) {
    sim::Simulator simulator(machine, &library,
                             sim::MeasurementOptions{.seed = config.seed});
    const core::BaselineLibrary baselines =
        core::collect_baselines(simulator, apps);
    std::printf("Machine: %s\n", machine.name.c_str());
    core::render_table3(apps, baselines).print(std::cout);

    // Companion detail: baseline execution time window per Section IV
    // ("actual values could range from as little as 150 seconds to over
    // 1000 seconds").
    double min_t = 1e30, max_t = 0.0;
    for (const auto& [name, profile] : baselines) {
      for (double t : profile.execution_time_s) {
        min_t = std::min(min_t, t);
        max_t = std::max(max_t, t);
      }
    }
    std::printf("baseline execution times across P-states: %.0f-%.0f s\n\n",
                min_t, max_t);
  }
  return 0;
}
