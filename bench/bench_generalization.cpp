// Quantifies the paper's unquantified generalization claim (Section
// IV-B3): that training on four homogeneous co-runner applications lets
// the model "extend beyond the set of four co-location applications ...
// and make predictions about applications that it has not seen
// previously". Three scenario categories on the 6-core machine:
//   seen-homogeneous    co-runners from the training four (reference)
//   unseen-homogeneous  co-runners from the other seven applications
//   heterogeneous       mixed co-runner groups (never seen in training)
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/generalization.hpp"

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());
  const std::size_t scenarios =
      static_cast<std::size_t>(args.get_int("scenarios", 150));

  bench::MachineExperiment experiment(sim::xeon_e5649(), config);
  core::ModelZooOptions zoo = config.evaluation().zoo;

  TextTable table("Generalization beyond the training co-runner set "
                  "(mean |error| %, fresh measurements)");
  table.set_columns({"model", "seen homogeneous", "unseen homogeneous",
                     "heterogeneous mixes"});
  for (core::ModelTechnique technique : core::kAllTechniques) {
    const core::ColocationPredictor predictor =
        core::ColocationPredictor::train(
            experiment.campaign().dataset,
            {technique, core::FeatureSet::kF}, zoo);
    core::GeneralizationOptions options;
    options.scenarios = scenarios;
    options.seed = config.seed ^ 0x51;
    const core::GeneralizationReport report =
        core::evaluate_generalization(
            experiment.simulator(), predictor,
            experiment.campaign().baselines, sim::benchmark_suite(),
            sim::training_coapp_names(), options);
    table.add_row({core::ModelId{technique, core::FeatureSet::kF}.name(),
                   TextTable::num(report.seen_homogeneous_mpe, 2),
                   TextTable::num(report.unseen_homogeneous_mpe, 2),
                   TextTable::num(report.heterogeneous_mpe, 2)});
  }
  table.print(std::cout);
  std::printf(
      "(%zu random scenarios per category; co-runner features are sums of\n"
      "baseline ratios, so generalization tests whether the models learned\n"
      "that additive structure rather than memorizing the sweep)\n",
      scenarios);
  return 0;
}
