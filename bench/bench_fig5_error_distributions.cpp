// Regenerates Figure 5 on the 6-core Xeon E5649:
//   (a) per-application execution-time distributions across all measured
//       co-location scenarios, and
//   (b) per-application signed percent-error distributions of the most
//       accurate model (NN with feature set F) on held-out data —
//       median, quartiles, and the share of predictions within ±2% / ±5%.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace coloc;
  const CliArgs args(argc, argv);
  const bench::HarnessConfig config = bench::HarnessConfig::from_cli(args);
  const obs::ObsSession session(config.run_session());

  bench::MachineExperiment experiment(sim::xeon_e5649(), config);
  const core::ModelId nn_f{core::ModelTechnique::kNeuralNetwork,
                           core::FeatureSet::kF};
  const core::EvaluationSuite suite = experiment.evaluate(nn_f);

  // ---- Figure 5(a): execution-time distributions. ----------------------
  TextTable fig5a(
      "Figure 5(a): execution-time distributions per application (s), "
      "6-core Xeon E5649");
  fig5a.set_columns({"application", "n", "min", "q25", "median", "q75",
                     "max"});
  const auto time_summaries =
      core::per_app_time_summaries(experiment.campaign().dataset);
  for (const auto& [app, s] : time_summaries) {
    fig5a.add_row({app, TextTable::num(s.count), TextTable::num(s.min, 0),
                   TextTable::num(s.q25, 0), TextTable::num(s.median, 0),
                   TextTable::num(s.q75, 0), TextTable::num(s.max, 0)});
  }
  fig5a.print(std::cout);

  // ---- Figure 5(b): NN-F percent-error distributions. -------------------
  const auto& predictions =
      suite.find(nn_f.technique, nn_f.feature_set).result.test_predictions;
  TextTable fig5b(
      "Figure 5(b): NN-F signed percent-error distributions per "
      "application (held-out data)");
  fig5b.set_columns({"application", "n", "q25 (%)", "median (%)",
                     "q75 (%)", "within +/-2%", "within +/-5%"});
  const auto error_summaries = core::per_app_error_summaries(predictions);

  // Per-app within-threshold shares.
  std::map<std::string, std::pair<std::size_t, std::size_t>> within;
  std::map<std::string, std::size_t> totals;
  for (const auto& p : predictions) {
    const std::string app = core::CampaignResult::tag_target(p.tag);
    const double err = 100.0 * std::abs(p.predicted - p.actual) / p.actual;
    ++totals[app];
    if (err <= 2.0) ++within[app].first;
    if (err <= 5.0) ++within[app].second;
  }
  std::size_t all = 0, all2 = 0, all5 = 0;
  for (const auto& [app, s] : error_summaries) {
    const double share2 = 100.0 * static_cast<double>(within[app].first) /
                          static_cast<double>(totals[app]);
    const double share5 = 100.0 * static_cast<double>(within[app].second) /
                          static_cast<double>(totals[app]);
    all += totals[app];
    all2 += within[app].first;
    all5 += within[app].second;
    fig5b.add_row({app, TextTable::num(s.count), TextTable::num(s.q25, 2),
                   TextTable::num(s.median, 2), TextTable::num(s.q75, 2),
                   TextTable::num(share2, 1) + "%",
                   TextTable::num(share5, 1) + "%"});
  }
  fig5b.print(std::cout);
  std::printf(
      "overall: %.1f%% of held-out predictions within +/-2%%, %.1f%% "
      "within +/-5%%\n"
      "(paper: the majority within +/-2%% and nearly all within 5%%)\n",
      100.0 * static_cast<double>(all2) / static_cast<double>(all),
      100.0 * static_cast<double>(all5) / static_cast<double>(all));
  return 0;
}
