#include "bench_common.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "fault/storage_fault.hpp"

namespace coloc::bench {

HarnessConfig HarnessConfig::from_cli(const CliArgs& args) {
  HarnessConfig config;
  config.partitions = static_cast<std::size_t>(
      args.get_int("partitions", static_cast<std::int64_t>(config.partitions)));
  config.nn_iterations = static_cast<std::size_t>(args.get_int(
      "nn-iters", static_cast<std::int64_t>(config.nn_iterations)));
  config.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(config.seed)));
  config.quick = args.get_bool("quick", false);
  config.jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
  if (config.jobs != 0) set_configured_jobs(config.jobs);
  config.metrics_out = args.get("metrics-out", "");
  config.trace_out = args.get("trace-out", "");
  config.bundle_out = args.get("bundle-out", "");
  config.fault_rate = args.get_double("fault-rate", config.fault_rate);
  if (args.has("fault-rate")) {
    fault::validate_fault_rate(config.fault_rate, "--fault-rate");
  }
  config.fault_kinds = args.get("fault-kinds", "");
  if (!config.fault_kinds.empty()) {
    fault::parse_fault_kinds(config.fault_kinds);  // reject bad tokens early
  }
  config.checkpoint = args.get("checkpoint", "");
  config.checkpoint_every = static_cast<std::size_t>(args.get_int(
      "checkpoint-every", static_cast<std::int64_t>(config.checkpoint_every)));
  config.resume = args.get_bool("resume", false);
  config.zoo_out = args.get("zoo-out", "");
  config.zoo_in = args.get("zoo-in", "");
  config.sweep_scale = static_cast<std::size_t>(std::max<std::int64_t>(
      1, args.get_int("sweep-scale",
                      static_cast<std::int64_t>(config.sweep_scale))));
  config.jobs_sweep = args.get("jobs-sweep", "");
  const std::int64_t restarts = args.get_int(
      "restarts", static_cast<std::int64_t>(config.restarts));
  if (restarts < 1 || restarts > 64) {
    throw coloc::invalid_argument_error(
        "--restarts must be in [1, 64], got " + std::to_string(restarts));
  }
  config.restarts = static_cast<std::size_t>(restarts);
  config.no_parallel_restarts = args.get_bool("no-parallel-restarts", false);
  if (!args.program().empty()) {
    const std::string& program = args.program();
    const auto slash = program.find_last_of('/');
    config.program =
        slash == std::string::npos ? program : program.substr(slash + 1);
  }
  if (config.quick) {
    config.partitions = std::min<std::size_t>(config.partitions, 3);
    config.nn_iterations = std::min<std::size_t>(config.nn_iterations, 200);
  }
  return config;
}

obs::ObsOptions HarnessConfig::run_session() const {
  obs::ObsOptions options;
  options.metrics_out = metrics_out;
  options.trace_out = trace_out;
  if (!bundle_out.empty()) {
    // A bundle is the self-describing trio obs_report consumes; it takes
    // precedence over the individual output flags.
    std::error_code ec;
    std::filesystem::create_directories(bundle_out, ec);
    if (ec) {
      std::fprintf(stderr, "[bench] cannot create bundle dir %s: %s\n",
                   bundle_out.c_str(), ec.message().c_str());
    }
    options.metrics_out = bundle_out + "/metrics.json";
    options.trace_out = bundle_out + "/trace.json";
    options.manifest_out = bundle_out + "/manifest.json";
  }
  options.report_resources = true;
  options.label = program;
  options.manifest.program = program;
  options.manifest.seed = seed;
  options.manifest.jobs = jobs != 0 ? jobs : configured_jobs();
  options.manifest.fault_rate = fault_rate >= 0.0 ? fault_rate : 0.0;
  options.manifest.extra.emplace_back("partitions",
                                      std::to_string(partitions));
  options.manifest.extra.emplace_back("nn_iters",
                                      std::to_string(nn_iterations));
  options.manifest.extra.emplace_back("quick", quick ? "1" : "0");
  // Recovery provenance: which fault plan (if any) shaped this run. The
  // zoo bundle digest joins these via obs::add_manifest_extra when a
  // bundle is saved or loaded.
  options.manifest.extra.emplace_back("fault_seed",
                                      std::to_string(fault_plan().seed));
  if (!zoo_out.empty()) options.manifest.extra.emplace_back("zoo_out", zoo_out);
  if (!zoo_in.empty()) options.manifest.extra.emplace_back("zoo_in", zoo_in);
  // Let workers retire their open spans before the session writes the
  // trace; see ObsOptions::flush_hook.
  options.flush_hook = [] { global_pool().quiesce(); };
  return options;
}

fault::FaultPlanConfig HarnessConfig::fault_plan() const {
  fault::FaultPlanConfig plan = fault::FaultPlanConfig::from_env();
  if (fault_rate >= 0.0) plan.rate = fault_rate;
  if (!fault_kinds.empty()) plan.kinds = fault::parse_fault_kinds(fault_kinds);
  return plan;
}

core::CampaignRobustness HarnessConfig::robustness(
    const std::string& machine_name) const {
  core::CampaignRobustness robust;
  robust.retry = fault::RetryPolicy::from_env();
  robust.checkpoint_every = checkpoint_every;
  robust.resume = resume;
  if (!checkpoint.empty()) {
    std::string suffix;
    for (char c : machine_name) {
      suffix.push_back(std::isalnum(static_cast<unsigned char>(c))
                           ? c
                           : '-');
    }
    robust.checkpoint_path = checkpoint + "." + suffix + ".csv";
  }
  return robust;
}

core::EvaluationConfig HarnessConfig::evaluation() const {
  core::EvaluationConfig eval;
  eval.validation.partitions = partitions;
  eval.validation.holdout_fraction = 0.3;  // paper: 30% withheld
  eval.validation.jobs = jobs;
  eval.zoo.mlp.max_iterations = nn_iterations;
  eval.zoo.mlp.weight_decay = 1e-6;
  eval.zoo.mlp.restarts = restarts;
  if (no_parallel_restarts) {
    eval.zoo.mlp.parallel_restarts = false;
    eval.zoo.mlp.fused_restarts = false;
  }
  return eval;
}

MachineExperiment::MachineExperiment(sim::MachineConfig machine,
                                     const HarnessConfig& config)
    : config_(config), machine_(std::move(machine)),
      simulator_(machine_, &library_,
                 sim::MeasurementOptions{.seed = config.seed}),
      plan_(config.fault_plan()), injector_(simulator_, plan_) {
  COLOC_LOG_INFO << "profiling application traces for " << machine_.name;
  core::CampaignConfig campaign_config = core::CampaignConfig::paper_defaults();
  campaign_config.jobs = config_.jobs;
  if (config_.quick) {
    campaign_config.pstate_indices = {0,
                                      machine_.pstates.size() - 1};
  }
  library_.profile_all(campaign_config.targets);
  COLOC_LOG_INFO << "running Table V collection campaign on "
                 << machine_.name;
  if (plan_.enabled()) {
    COLOC_LOG_INFO << "fault injection armed: rate "
                   << plan_.config().rate << ", seed "
                   << plan_.config().seed;
  }
  campaign_ = core::run_campaign(injector_, campaign_config,
                                 config_.robustness(machine_.name));
  COLOC_LOG_INFO << "collected " << campaign_.dataset.num_rows()
                 << " co-location measurements; "
                 << campaign_.completeness.summary();
}

core::EvaluationSuite MachineExperiment::evaluate(
    std::optional<core::ModelId> collect_for) const {
  return core::evaluate_model_zoo(campaign_.dataset, config_.evaluation(),
                                  collect_for);
}

void MachineExperiment::print_figure(const std::string& title,
                                     core::Metric metric) const {
  const core::EvaluationSuite suite = evaluate();
  const auto series = core::build_figure_series(suite, metric);
  std::printf("%s\n", core::render_figure(title, series).c_str());
  std::printf(
      "(averaged over %zu random 70/30 partitions; paper protocol uses "
      "--partitions=100)\n",
      config_.partitions);
}

}  // namespace coloc::bench
